//! Minimal, offline, API-compatible stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! property tests run against this harness instead of upstream proptest.
//! It keeps the subset of the API the workspace uses — the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range/tuple/[`Just`] strategies,
//! [`collection::vec`]/[`collection::btree_set`], the [`proptest!`] macro
//! (with an optional `#![proptest_config(..)]` header) and the
//! `prop_assert*`/`prop_assume!` macros — with deterministic seeding so
//! failures reproduce. No shrinking: a failing case reports its inputs'
//! seed and case index instead.

use std::collections::BTreeSet;
use std::ops::Range;

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator; every test case derives one from the test name
    /// and case index so runs are reproducible.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply range reduction (Lemire); bias is irrelevant
        // for test-case generation.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error type returned by generated test-case closures.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Build a failure from a formatted message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returning a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // The unit draw is < 1.0 in f64, but the cast (and the
                // multiply) can round up far enough to land exactly on
                // the exclusive upper bound; fold that measure-zero edge
                // back into the range.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Set of distinct values from `element` with size in `size` (best
    /// effort when the element domain is small).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < want && attempts < want.saturating_mul(64) + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Drive one property: run `config.cases` non-rejected cases, panicking
/// with the case's reproduction info on the first failure.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    });
    let mut done = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    let max_rejects = config.cases.saturating_mul(16).max(256);
    while done < config.cases {
        let mut rng = TestRng::new(base.wrapping_add(case.wrapping_mul(0x9E37_79B9)));
        case += 1;
        match f(&mut rng) {
            Ok(()) => done += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property '{name}': too many prop_assume! rejections \
                     ({rejected} for {done} accepted cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at case {} : {msg}", case - 1);
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of `#[test] fn name(pat in
/// strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&config, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)*
                #[allow(unused_mut)]
                let mut __proptest_case =
                    || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                __proptest_case()
            });
        }
    )*};
}

/// Like `assert!` but reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!` but reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Like `assert_ne!` but reports through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.5f32..4.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..4.0).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_dependencies_hold(
            (lo, hi) in (0usize..10).prop_flat_map(|lo| (Just(lo), (lo + 1)..20))
        ) {
            prop_assert!(lo < hi);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = super::TestRng::new(42);
        let mut b = super::TestRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! Minimal, offline, API-compatible stand-in for the `criterion` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! bench targets under `crates/bench/benches/` link against this harness
//! instead of upstream criterion. It covers the subset of the API those
//! files use — [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with `sample_size`/`warm_up_time`/`measurement_time`, [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — measuring
//! wall-clock time and printing per-iteration statistics in a
//! criterion-like one-line format. No plots, no statistical regression
//! testing; numbers are honest means over timed samples.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement marker types (only wall-clock is supported).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Per-target timing settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_count: usize,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_count: 20,
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1500),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
    settings: Settings,
}

impl Criterion {
    /// Build a driver from the process arguments; the first non-flag
    /// argument (as passed by `cargo bench -- <substring>`) filters
    /// benchmark ids by substring.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "Benchmark");
        Self {
            filter,
            settings: Settings::default(),
        }
    }

    /// Run one benchmark closure under the driver's settings.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let settings = self.settings;
        self.run(id, settings, f);
        self
    }

    /// Start a named group whose settings can be tuned before its benches
    /// run.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings: Settings::default(),
            _measurement: std::marker::PhantomData,
        }
    }

    fn run<F>(&mut self, id: String, settings: Settings, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: double the iteration count until the warm-up budget is
        // spent, which also yields a per-iteration estimate.
        let mut iters = 1u64;
        let mut per_iter;
        let warm_start = Instant::now();
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter = b.elapsed.as_secs_f64() / iters as f64;
            if warm_start.elapsed() >= settings.warm_up || iters >= (1 << 30) {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        // Measurement: fixed number of samples sized to fill the budget.
        let budget = settings.measure.as_secs_f64();
        let per_sample = budget / settings.sample_count.max(1) as f64;
        let sample_iters = ((per_sample / per_iter.max(1e-12)) as u64).max(1);
        let mut samples = Vec::with_capacity(settings.sample_count);
        for _ in 0..settings.sample_count.max(1) {
            let mut b = Bencher {
                iters: sample_iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / sample_iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<50} time: [{} {} {}]  ({} samples x {sample_iters} iters)",
            fmt_time(lo),
            fmt_time(mean),
            fmt_time(hi),
            samples.len(),
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A group of related benchmarks sharing tuned settings.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_count = n;
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up = d;
        self
    }

    /// Total sampling budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measure = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let settings = self.settings;
        self.criterion.run(id, settings, f);
        self
    }

    /// End the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// Times the routine a benchmark hands to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` the harness-chosen number of times, timing the batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collect benchmark functions into a group runner, mirroring criterion's
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` for a bench target (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion {
            filter: None,
            settings: Settings {
                sample_count: 3,
                warm_up: Duration::from_millis(1),
                measure: Duration::from_millis(5),
            },
        };
        let mut count = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| count += 1));
        assert!(count > 0, "routine never ran");
    }

    #[test]
    fn groups_respect_filter() {
        let mut c = Criterion {
            filter: Some("matches".into()),
            settings: Settings {
                sample_count: 2,
                warm_up: Duration::from_millis(1),
                measure: Duration::from_millis(2),
            },
        };
        let mut hit = false;
        let mut g = c.benchmark_group("filtered");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        g.bench_function("no_match_here", |b| b.iter(|| hit = true));
        g.finish();
        assert!(!hit, "filtered-out bench must not run");
    }
}

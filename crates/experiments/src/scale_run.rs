//! Million-user-scale federated rounds over the sharded stack.
//!
//! This is the end-to-end wiring of the scaling architecture: a
//! lazily-generated scale-free population
//! ([`ScaleFreeDataset`]), a sharded client store
//! (clients materialize on first participation), and streaming sharded
//! evaluation — so a 1M-user / 100k-item round costs `O(|U'|)` memory and
//! time instead of `O(n)`, while staying bit-identical to the eager dense
//! path.
//!
//! `repro scale` runs it from the CLI; `repro scale --smoke` is the CI
//! gate (a 50k-user shrink asserting the lazy-materialization invariant
//! and dense-vs-sharded byte-identity across thread counts).

use fedrec_data::scalefree::{ScaleFreeConfig, ScaleFreeDataset};
use fedrec_data::InteractionSource;
use fedrec_federated::server::SumAggregator;
use fedrec_federated::{DefensePipeline, FedConfig, NoAttack, Simulation, StoreBackend};
use fedrec_recsys::eval::Evaluator;
use std::sync::Arc;
use std::time::Instant;

/// Specification of one scale run.
#[derive(Debug, Clone)]
pub struct ScaleSpec {
    /// Population generator.
    pub data: ScaleFreeConfig,
    /// Latent dimension `k`.
    pub k: usize,
    /// Rounds to run.
    pub epochs: usize,
    /// Fraction of clients selected per round (the whole point of the
    /// sharded store is that this is small at scale).
    pub client_fraction: f64,
    /// Worker threads for the round engine and the streaming evaluator.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Evaluate ER/NDCG over this many users (streamed, partial
    /// population; 0 skips evaluation).
    pub eval_users: usize,
    /// Number of (deterministically chosen) target items to score.
    pub num_targets: usize,
}

impl ScaleSpec {
    /// The headline workload: one million users, 100k items.
    pub fn million() -> Self {
        Self {
            data: ScaleFreeConfig::million(),
            k: 32,
            epochs: 3,
            client_fraction: 0.000_5, // ~500 participants per round
            threads: 1,
            seed: 42,
            eval_users: 10_000,
            num_targets: 5,
        }
    }

    /// The CI-sized shrink: 50k users, same shape, seconds end to end.
    pub fn smoke() -> Self {
        Self {
            data: ScaleFreeConfig::smoke_50k(),
            k: 16,
            epochs: 8,
            client_fraction: 0.01, // ~500 participants per round
            threads: 1,
            seed: 42,
            eval_users: 2_000,
            num_targets: 3,
        }
    }

    fn fed_config(&self) -> FedConfig {
        FedConfig {
            k: self.k,
            lr: 0.05,
            epochs: self.epochs,
            client_fraction: self.client_fraction,
            threads: self.threads,
            seed: self.seed,
            ..FedConfig::default()
        }
    }

    /// Deterministic target set: the highest item ids. The generator
    /// scatters popularity over the id space with a seeded permutation,
    /// so these are arbitrary-popularity items — fine for a scale probe,
    /// which measures cost, not attack efficacy.
    fn targets(&self) -> Vec<u32> {
        let m = self.data.num_items as u32;
        (m.saturating_sub(self.num_targets as u32)..m).collect()
    }
}

/// What a scale run measured.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Population size `n`.
    pub users: usize,
    /// Catalog size `m`.
    pub items: usize,
    /// Rounds run.
    pub epochs: usize,
    /// Distinct benign clients selected in at least one round.
    pub participants_touched: usize,
    /// Client rows materialized in the store (`≤ participants_touched`,
    /// asserted).
    pub rows_materialized: usize,
    /// Dataset shards generated out of the total.
    pub dataset_shards_built: usize,
    /// Total dataset shards.
    pub dataset_shards_total: usize,
    /// Per-round total benign loss.
    pub losses: Vec<f32>,
    /// ER@10 over the evaluated user range (None when eval was skipped).
    pub er10: Option<f64>,
    /// NDCG@10 over the evaluated user range.
    pub ndcg10: Option<f64>,
    /// Seconds building dataset + simulation.
    pub build_secs: f64,
    /// Seconds in the round loop.
    pub train_secs: f64,
    /// Seconds in streamed evaluation.
    pub eval_secs: f64,
}

impl ScaleReport {
    /// Render as a JSON object (hand-rolled; no serde in this workspace).
    pub fn to_json(&self) -> String {
        let losses: Vec<String> = self.losses.iter().map(|l| format!("{l:.4}")).collect();
        format!(
            concat!(
                "{{\n",
                "  \"users\": {},\n",
                "  \"items\": {},\n",
                "  \"epochs\": {},\n",
                "  \"participants_touched\": {},\n",
                "  \"rows_materialized\": {},\n",
                "  \"dataset_shards_built\": {},\n",
                "  \"dataset_shards_total\": {},\n",
                "  \"losses\": [{}],\n",
                "  \"er10\": {},\n",
                "  \"ndcg10\": {},\n",
                "  \"build_secs\": {:.3},\n",
                "  \"train_secs\": {:.3},\n",
                "  \"eval_secs\": {:.3}\n",
                "}}"
            ),
            self.users,
            self.items,
            self.epochs,
            self.participants_touched,
            self.rows_materialized,
            self.dataset_shards_built,
            self.dataset_shards_total,
            losses.join(", "),
            self.er10.map_or("null".into(), |v| format!("{v:.6}")),
            self.ndcg10.map_or("null".into(), |v| format!("{v:.6}")),
            self.build_secs,
            self.train_secs,
            self.eval_secs,
        )
    }
}

/// Run one scale workload on the given backend.
///
/// Always checks the lazy-materialization invariant: the store never
/// holds more client rows than distinct participants (reads — evaluation,
/// row snapshots — must derive, not materialize).
pub fn run_scale(spec: &ScaleSpec, backend: StoreBackend) -> ScaleReport {
    // fedrec-lint: allow(wall-clock) — build/train/eval wall-times are the bench payload of the scale report; losses, metrics and counters stay clock-free
    let t0 = Instant::now();
    let data: Arc<ScaleFreeDataset> = Arc::new(spec.data.generate(spec.seed ^ 0xDA7A));
    let mut sim = Simulation::with_store(
        data.clone(),
        spec.fed_config(),
        Box::new(NoAttack),
        0,
        DefensePipeline::plain(Box::new(SumAggregator)),
        backend,
    );
    let build_secs = t0.elapsed().as_secs_f64();

    // fedrec-lint: allow(wall-clock) — same reporting-only timing as t0 above
    let t1 = Instant::now();
    let mut losses = Vec::with_capacity(spec.epochs);
    for epoch in 0..spec.epochs {
        losses.push(sim.step(epoch));
    }
    let train_secs = t1.elapsed().as_secs_f64();

    // fedrec-lint: allow(wall-clock) — same reporting-only timing as t0 above
    let t2 = Instant::now();
    let (er10, ndcg10) = if spec.eval_users > 0 {
        let targets = spec.targets();
        let test = Vec::new(); // partial-population protocol: no holdout
        let evaluator = Evaluator::new(&*data, &test, &targets, spec.seed ^ 0xE7A1);
        // Fixed eval shard size regardless of backend: the shard partition
        // fixes the metric summation order, and dense-vs-sharded runs must
        // produce identical reports.
        let shard_rows = 1_024;
        let rep = evaluator.evaluate_user_range(
            sim.items(),
            sim.user_rows(),
            &*data,
            &test,
            0..spec.eval_users.min(data.num_users()),
            spec.threads,
            shard_rows,
        );
        (Some(rep.attack.er_at_10), Some(rep.attack.ndcg_at_10))
    } else {
        (None, None)
    };
    let eval_secs = t2.elapsed().as_secs_f64();

    let report = ScaleReport {
        users: data.num_users(),
        items: data.num_items(),
        epochs: spec.epochs,
        participants_touched: sim.participants_touched(),
        rows_materialized: sim.rows_materialized(),
        dataset_shards_built: data.shards_generated(),
        dataset_shards_total: data.num_shards(),
        losses,
        er10,
        ndcg10,
        build_secs,
        train_secs,
        eval_secs,
    };
    if backend != StoreBackend::Dense {
        assert!(
            report.rows_materialized <= report.participants_touched,
            "store materialized {} rows but only {} participants were touched — \
             a read path is materializing state",
            report.rows_materialized,
            report.participants_touched,
        );
    }
    report
}

/// The `repro scale --smoke` CI gate.
///
/// Runs the 50k-user shrink on the sharded backend (2 threads) and the
/// dense backend (1 thread) and asserts:
///
/// 1. the sharded store materialized no more rows than participants were
///    touched, and far fewer than the population;
/// 2. losses are **bit-identical** between the two backends (which, with
///    different thread counts, is also a cross-thread determinism check);
/// 3. the streamed partial-population evaluation agrees exactly.
///
/// Returns a human-readable summary, or an error describing the failed
/// invariant.
pub fn scale_smoke() -> Result<String, String> {
    let mut spec = ScaleSpec::smoke();
    spec.threads = 2;
    let sharded = run_scale(&spec, StoreBackend::sharded());
    spec.threads = 1;
    let dense = run_scale(&spec, StoreBackend::Dense);

    if sharded.rows_materialized > sharded.participants_touched {
        return Err(format!(
            "lazy invariant violated: {} rows materialized > {} participants touched",
            sharded.rows_materialized, sharded.participants_touched
        ));
    }
    if sharded.rows_materialized >= sharded.users {
        return Err(format!(
            "sharded store materialized the whole population ({} rows)",
            sharded.rows_materialized
        ));
    }
    let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    if bits(&sharded.losses) != bits(&dense.losses) {
        return Err(format!(
            "dense vs sharded losses diverged:\n  sharded: {:?}\n  dense:   {:?}",
            sharded.losses, dense.losses
        ));
    }
    if sharded.er10 != dense.er10 || sharded.ndcg10 != dense.ndcg10 {
        return Err(format!(
            "dense vs sharded evaluation diverged: er10 {:?} vs {:?}, ndcg10 {:?} vs {:?}",
            sharded.er10, dense.er10, sharded.ndcg10, dense.ndcg10
        ));
    }
    Ok(format!(
        "scale smoke OK: {} users, {} rounds, {} participants touched, \
         {} rows materialized ({:.2}% of population), {}/{} dataset shards built, \
         dense/sharded byte-identical across 1/2 threads",
        sharded.users,
        sharded.epochs,
        sharded.participants_touched,
        sharded.rows_materialized,
        100.0 * sharded.rows_materialized as f64 / sharded.users as f64,
        sharded.dataset_shards_built,
        sharded.dataset_shards_total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScaleSpec {
        ScaleSpec {
            data: ScaleFreeConfig::tiny(),
            k: 6,
            epochs: 4,
            client_fraction: 0.05,
            threads: 1,
            seed: 7,
            eval_users: 200,
            num_targets: 2,
        }
    }

    #[test]
    fn sharded_run_materializes_only_participants() {
        let r = run_scale(&tiny_spec(), StoreBackend::Sharded { shard_rows: 64 });
        assert_eq!(r.users, 600);
        assert_eq!(r.losses.len(), 4);
        assert!(r.rows_materialized <= r.participants_touched);
        assert!(
            r.rows_materialized < r.users,
            "tiny fraction must not touch everyone"
        );
        assert!(r.dataset_shards_built <= r.dataset_shards_total);
        assert!(r.er10.is_some() && r.ndcg10.is_some());
        let json = r.to_json();
        assert!(json.contains("\"rows_materialized\""));
        assert!(json.contains("\"er10\""));
    }

    #[test]
    fn dense_and_sharded_tiny_runs_are_bit_identical() {
        let spec = tiny_spec();
        let a = run_scale(&spec, StoreBackend::Dense);
        let b = run_scale(&spec, StoreBackend::Sharded { shard_rows: 50 });
        let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.losses), bits(&b.losses));
        assert_eq!(a.er10, b.er10);
        assert_eq!(a.ndcg10, b.ndcg10);
        assert_eq!(a.rows_materialized, a.users, "dense is eager by definition");
    }

    #[test]
    fn eval_skip_is_supported() {
        let mut spec = tiny_spec();
        spec.eval_users = 0;
        let r = run_scale(&spec, StoreBackend::sharded());
        assert_eq!(r.er10, None);
        assert!(r.to_json().contains("\"er10\": null"));
    }
}

//! Table rendering (markdown + CSV) for experiment output.

/// A rendered experiment table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Title, e.g. `"Table VII: effectiveness of attacks"`.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (stringified cells, `header.len()` each).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, header: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the width does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// GitHub-flavored markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// CSV rendering (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a metric to the paper's 4-decimal convention.
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a measured value next to the paper's published value, e.g.
/// `"0.8312 (paper 0.9400)"`. `paper` = `None` renders just the value.
pub fn with_paper(measured: f64, paper: Option<f64>) -> String {
    match paper {
        Some(p) => format!("{} (paper {})", fmt4(measured), fmt4(p)),
        None => fmt4(measured),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", vec!["a", "b"]);
        t.push_row(vec!["1".into(), "x,y".into()]);
        t
    }

    #[test]
    fn markdown_contains_title_header_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | x,y |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("1,\"x,y\""));
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = Table::new("q", vec!["c"]);
        t.push_row(vec!["say \"hi\"".into()]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("bad", vec!["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt4(0.94), "0.9400");
        assert_eq!(with_paper(0.83, Some(0.94)), "0.8300 (paper 0.9400)");
        assert_eq!(with_paper(0.83, None), "0.8300");
    }
}

//! Extension experiment: can upload-level detectors spot each attack?
//!
//! §V-D of the paper argues norm-style detection "does not perform well
//! in FR" because honest gradients vary widely and carry DP noise, and
//! §VI points at gradient classification \[51\] as future work. This
//! runner measures both standard signals against every attack family:
//! one round of genuine benign uploads plus the attack's uploads, scored
//! by the norm-outlier and cosine-similarity detectors.

use crate::report::Table;
use crate::scale::{DatasetId, Scale};
use fedrec_baselines::registry::{build_adversary, AttackEnv, AttackMethod};
use fedrec_data::split::leave_one_out;
use fedrec_defense::{NormDetector, SimilarityDetector};
use fedrec_federated::adversary::RoundCtx;
use fedrec_federated::client::BenignClient;
use fedrec_linalg::{Matrix, SeededRng, SparseGrad};

/// Attacks evaluated by the detection experiment.
pub const DETECTION_METHODS: [AttackMethod; 5] = [
    AttackMethod::Random,
    AttackMethod::Popular,
    AttackMethod::ExplicitBoost,
    AttackMethod::PipAttack,
    AttackMethod::FedRecAttack,
];

/// Build one round of uploads: all benign clients plus `num_malicious`
/// poisoned uploads from `method`. Returns `(uploads, malicious_range)`.
fn one_round(method: AttackMethod, scale: Scale, seed: u64) -> (Vec<SparseGrad>, Vec<usize>) {
    let full = scale.dataset(DatasetId::Ml100k, None, seed);
    let (train, _) = leave_one_out(&full, seed ^ 0x10);
    let targets = train.coldest_items(1);
    let fed = scale.fed_config(seed);
    let num_malicious = (train.num_users() as f64 * 0.05).round() as usize;

    let mut rng = SeededRng::new(seed ^ 0xDE7);
    let items = Matrix::random_normal(train.num_items(), fed.k, 0.0, 0.1, &mut rng);
    let mut uploads = Vec::new();
    for u in 0..train.num_users() {
        let mut c = BenignClient::new(
            u,
            train.user_items(u).to_vec(),
            train.num_items(),
            fed.k,
            &mut rng,
        );
        if let Some(up) = c.local_round(&items, fed.lr, 0.0, fed.clip_norm, 0.0) {
            uploads.push(up.item_grads);
        }
    }
    let benign = uploads.len();

    let env = AttackEnv::over_dataset(&train, &targets)
        .malicious(num_malicious)
        .kappa(60)
        .k(fed.k)
        .seed(seed ^ 0xA7)
        .public(0.05, seed ^ 0xD1);
    let mut adversary = build_adversary(method, &env);
    let selected: Vec<usize> = (0..num_malicious).collect();
    let ctx = RoundCtx {
        round: 0,
        lr: fed.lr,
        clip_norm: fed.clip_norm,
        selected_malicious: &selected,
    };
    uploads.extend(adversary.poison(&items, &ctx, &mut rng));
    let malicious: Vec<usize> = (benign..uploads.len()).collect();
    (uploads, malicious)
}

/// The detection extension table: per attack, the recall/precision of
/// both detectors on one round of traffic.
pub fn extension_detection(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "Extension: per-round detectability of each attack (MovieLens-100K, rho=5%)",
        vec![
            "Attack",
            "norm recall",
            "norm precision",
            "similarity recall",
            "similarity precision",
        ],
    );
    let norm = NormDetector::new(3.0);
    let sim = SimilarityDetector {
        cosine_threshold: 0.9,
        min_pairs: 2,
    };
    for method in DETECTION_METHODS {
        let (uploads, malicious) = one_round(method, scale, seed);
        let nr = norm.inspect(&uploads);
        let sr = sim.inspect(&uploads);
        t.push_row(vec![
            method.label().to_string(),
            format!("{:.2}", nr.recall(&malicious)),
            format!("{:.2}", nr.precision(&malicious)),
            format!("{:.2}", sr.recall(&malicious)),
            format!("{:.2}", sr.precision(&malicious)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_table_has_all_attacks() {
        let t = extension_detection(Scale::Smoke, 3);
        assert_eq!(t.rows.len(), DETECTION_METHODS.len());
        for row in &t.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().expect("numeric cell");
                assert!((0.0..=1.0).contains(&v), "{row:?}");
            }
        }
    }

    #[test]
    fn fedrecattack_evades_norms_but_not_similarity() {
        let t = extension_detection(Scale::Smoke, 3);
        let cell = |label: &str, col: usize| -> f64 {
            t.rows.iter().find(|r| r[0] == label).expect("row")[col]
                .parse()
                .unwrap()
        };
        // The paper's stealth claim at the traffic level: clipped uploads
        // mostly hide inside the benign norm distribution...
        assert!(
            cell("FedRecAttack", 1) <= 0.5,
            "norm detection should mostly miss the clipped attack"
        );
        // ...but the measured extension finding is that coordination is
        // the better signal: the attack's clients share target rows, so
        // similarity clustering catches at least as many as norms do.
        assert!(
            cell("FedRecAttack", 3) >= cell("FedRecAttack", 1),
            "similarity should be the stronger signal"
        );
    }
}

//! The scenario matrix: every attack × every defense × every ρ, in
//! parallel, streamed as JSONL — over dense Table II datasets *or*
//! million-user scale-free populations.
//!
//! The paper evaluates attacks one table at a time; the §V-D/§VI question
//! — *how much do standard FL defenses see of each attack, and at what
//! accuracy cost?* — needs the full grid. This module fans the grid out
//! across scoped worker threads (the same engine pattern as the federated
//! round loop: a shared atomic cursor over an id-ordered work list, no
//! shared mutable state between cells) and streams one JSONL record per
//! cell per eval epoch into a run directory, one file per cell.
//!
//! # Populations and backends
//!
//! A grid runs over a [`Population`]: either a dense synthetic stand-in
//! for a Table II dataset ([`Population::Dense`], the historical path),
//! or a lazily generated scale-free population
//! ([`Population::ScaleFree`]) — the regime the paper's threat model
//! actually assumes, where attackers control a tiny fraction of a huge
//! user base. Cells are wired through
//! [`Simulation::with_store`] with the configured [`StoreBackend`], so a
//! million-user cell materializes only the clients the protocol selects
//! (`rows_materialized ≤ participants_touched`, recorded per record) and
//! the malicious users exist as lazily materialized rows of the
//! adversary's own shard store. Scale-free cells evaluate by streaming
//! user shards ([`Evaluator::evaluate_user_range`]) over an `eval_users`
//! prefix instead of assembling the dense `n × k` model.
//!
//! # Model axis
//!
//! Each cell also names a [`ModelKind`]: matrix factorization (the
//! paper's experimental model, the historical path) or NCF with its
//! shared interaction MLP `Θ` riding the round loop's flat shared block.
//! MF cells keep their pre-model-axis ids, seeds and filenames, and —
//! [`model_invariant`] — their records are byte-identical to before the
//! model axis existed modulo the new `model` key. NCF cells (`ncf_`-
//! prefixed ids) run the same attacks (poisoning `V` only — the paper's
//! §IV generic choice) and defenses, evaluate through the MLP in `full`
//! mode only (the pruned/incremental norm bounds are dot-product math),
//! and skip the MF-specific live-serving probe.
//!
//! # Determinism contract
//!
//! Every cell derives its RNG seed from the master seed and the cell's
//! identity alone ([`CellSpec::cell_seed`]), never from scheduling: a
//! cell rerun standalone (`repro cell`) reproduces its JSONL records
//! **byte-identically** — modulo the single volatile wall-clock field
//! `eval_ms`, which every identity gate strips via
//! [`volatile_invariant`] — regardless of worker count or which other
//! cells ran. Dense and sharded backends are bit-identical too: a record
//! differs only in its `backend` and `rows_materialized` fields
//! (normalized by [`backend_invariant`]). `repro matrix --smoke` asserts
//! both on the 50k-user scale-free smoke preset.
//!
//! # Evaluation fast path
//!
//! Scale-free cells evaluate through the streamed
//! [`EvalMode`] machinery: `full` (blocked kernel sweep), `pruned`
//! (norm-bound exact top-K) or `incremental` (cross-epoch candidate
//! caching, with per-cell [`IncrementalEvalState`] living for the cell's
//! lifetime). All three produce byte-identical metric fields; only
//! `eval_mode`/`items_scored`/`items_skipped` (and the volatile
//! `eval_ms`) differ, normalized by [`mode_invariant`]. Dense populations
//! always use the dense full-model sweep and record `eval_mode:"full"` —
//! streamed and dense sweeps differ in float association, so modes only
//! apply where the streamed path is already the baseline.

use crate::report::Table;
use crate::runner::{default_targets, malicious_count};
use crate::scale::{DatasetId, Scale};
use fedrec_baselines::registry::{build_adversary, AttackEnv, AttackMethod};
use fedrec_data::scalefree::ScaleFreeConfig;
use fedrec_data::split::{leave_one_out, TestSet};
use fedrec_data::{Dataset, HoldoutView, InteractionSource};
use fedrec_defense::{Krum, NormBound, NormDetector, SimilarityDetector, TrimmedMean};
use fedrec_federated::defense::{DefensePipeline, Detector};
use fedrec_federated::history::{RoundDefense, TrainingHistory};
use fedrec_federated::server::SumAggregator;
use fedrec_federated::simulation::Snapshot;
use fedrec_federated::{FaultPlan, Simulation, StoreBackend};
use fedrec_ncf::{NcfClientModel, NcfModel, Theta};
use fedrec_recsys::eval::{EvalReport, Evaluator};
use fedrec_recsys::metrics::MetricsAccumulator;
use fedrec_recsys::scorer::{DenseScores, PrunedItems, PrunedScores};
use fedrec_recsys::{EvalCounters, EvalMode, IncrementalEvalState};
use fedrec_serve::{ServeConfig, ServedTopK, Service};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Presets of the lazily generated scale-free population a grid can run
/// on (see [`ScaleFreeConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalePreset {
    /// One million users over a 100k-item catalog — the headline scale.
    Million,
    /// The 50k-user CI shrink behind `repro matrix --smoke`.
    Smoke50k,
    /// A 600-user miniature for unit tests.
    Tiny,
}

impl ScalePreset {
    /// The population generator for this preset.
    pub fn config(&self) -> ScaleFreeConfig {
        match self {
            ScalePreset::Million => ScaleFreeConfig::million(),
            ScalePreset::Smoke50k => ScaleFreeConfig::smoke_50k(),
            ScalePreset::Tiny => ScaleFreeConfig::tiny(),
        }
    }

    /// JSONL `population` field and CLI name.
    pub fn label(&self) -> &'static str {
        match self {
            ScalePreset::Million => "million",
            ScalePreset::Smoke50k => "smoke50k",
            ScalePreset::Tiny => "scalefree-tiny",
        }
    }

    /// Fraction of clients selected per round — the whole point of the
    /// sharded store is that this is small at scale (≈500 participants
    /// per round for every preset).
    pub fn client_fraction(&self) -> f64 {
        match self {
            ScalePreset::Million => 0.000_5,
            ScalePreset::Smoke50k => 0.01,
            ScalePreset::Tiny => 0.05,
        }
    }

    /// Users covered by the streamed partial-population evaluation.
    pub fn eval_users(&self) -> usize {
        match self {
            ScalePreset::Million => 10_000,
            ScalePreset::Smoke50k => 2_000,
            ScalePreset::Tiny => 200,
        }
    }

    /// Default malicious ratios: the tiny-ρ regime the paper's threat
    /// model assumes at population scale (0.1 % of a million users is
    /// still a thousand colluding clients).
    pub fn default_rhos(&self) -> Vec<f64> {
        match self {
            ScalePreset::Million => vec![0.0, 0.001],
            ScalePreset::Smoke50k | ScalePreset::Tiny => vec![0.0, 0.01],
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "million" | "1m" => ScalePreset::Million,
            "smoke50k" | "50k" => ScalePreset::Smoke50k,
            "scalefree-tiny" | "tiny" => ScalePreset::Tiny,
            _ => return None,
        })
    }
}

/// Which population a scenario grid runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Population {
    /// A dense synthetic stand-in for a Table II dataset, split
    /// leave-one-out and evaluated with the dense full-model sweep — the
    /// historical path, byte-identical to pre-population grids.
    Dense(DatasetId),
    /// A lazily generated scale-free population: a read-time holdout
    /// ([`HoldoutView`]) masks one item per eligible user so HR@10 is
    /// real, targets are deterministic top ids, evaluation streams a
    /// partial-population prefix, and client state sits behind the
    /// configured [`StoreBackend`].
    ScaleFree(ScalePreset),
}

impl Population {
    /// JSONL `population` field value.
    pub fn label(&self) -> &'static str {
        match self {
            Population::Dense(id) => id.label(),
            Population::ScaleFree(p) => p.label(),
        }
    }

    /// Parse a CLI name: a scale preset (`million`, `smoke50k`, `tiny`)
    /// or a dense dataset name (`ml100k`, `ml1m`, `steam`).
    pub fn parse(s: &str) -> Option<Self> {
        if let Some(p) = ScalePreset::parse(s) {
            return Some(Population::ScaleFree(p));
        }
        DatasetId::parse(s).map(Population::Dense)
    }
}

/// The defense arm of a scenario cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseKind {
    /// Plain summation — the undefended baseline the paper attacks.
    None,
    /// Whole-update norm filtering ([`NormBound`], 3× the median norm).
    NormClip,
    /// Krum selection with `f` = the cell's malicious count.
    Krum,
    /// Coordinate-wise 10 % trimmed mean.
    TrimmedMean,
    /// Similarity-detector-gated sum: flagged uploads are excluded from
    /// aggregation inside the round loop.
    DetectorGated,
}

impl DefenseKind {
    /// Every defense arm, in report order.
    pub const ALL: [DefenseKind; 5] = [
        DefenseKind::None,
        DefenseKind::NormClip,
        DefenseKind::Krum,
        DefenseKind::TrimmedMean,
        DefenseKind::DetectorGated,
    ];

    /// Display name (also the JSONL `defense` field and filename part).
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::None => "none",
            DefenseKind::NormClip => "norm-clip",
            DefenseKind::Krum => "krum",
            DefenseKind::TrimmedMean => "trimmed-mean",
            DefenseKind::DetectorGated => "detector-gated",
        }
    }

    /// Parse a CLI name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "none" | "sum" => DefenseKind::None,
            "norm-clip" | "normclip" | "norm-bound" => DefenseKind::NormClip,
            "krum" => DefenseKind::Krum,
            "trimmed-mean" | "trimmedmean" | "trim" => DefenseKind::TrimmedMean,
            "detector-gated" | "detector" | "gated" => DefenseKind::DetectorGated,
            _ => return None,
        })
    }

    /// Build the cell's [`DefensePipeline`]. Aggregation-only defenses
    /// carry a one-sided norm detector in *monitor* mode so every cell
    /// records detection trajectories without perturbing training; only
    /// [`DefenseKind::DetectorGated`] actually excludes flagged uploads.
    pub fn build(&self, num_malicious: usize) -> DefensePipeline {
        let monitor = || Box::new(NormDetector::new(3.0)) as Box<dyn Detector>;
        match self {
            DefenseKind::None => DefensePipeline::monitored(monitor(), Box::new(SumAggregator)),
            DefenseKind::NormClip => {
                DefensePipeline::monitored(monitor(), Box::new(NormBound { factor: 3.0 }))
            }
            DefenseKind::Krum => DefensePipeline::monitored(
                monitor(),
                Box::new(Krum {
                    assumed_byzantine: num_malicious.max(1),
                }),
            ),
            DefenseKind::TrimmedMean => {
                DefensePipeline::monitored(monitor(), Box::new(TrimmedMean { trim_fraction: 0.1 }))
            }
            DefenseKind::DetectorGated => DefensePipeline::gated(
                Box::new(SimilarityDetector {
                    cosine_threshold: 0.9,
                    min_pairs: 2,
                }),
                Box::new(SumAggregator),
            ),
        }
    }
}

/// The model family a cell trains — the [`ClientModel`] seam
/// instantiation plugged into its round loop.
///
/// [`ClientModel`]: fedrec_federated::ClientModel
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Matrix factorization (§III-B with fixed dot-product Υ) — the
    /// historical path and the paper's experimental model.
    Mf,
    /// Neural collaborative filtering: the learnable interaction MLP `Θ`
    /// shared next to `V` ([`fedrec_ncf::NcfClientModel`]).
    Ncf,
}

impl ModelKind {
    /// Every model family, in grid order.
    pub const ALL: [ModelKind; 2] = [ModelKind::Mf, ModelKind::Ncf];

    /// JSONL `model` field, CLI name, and (for NCF) cell-id prefix.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Mf => "mf",
            ModelKind::Ncf => "ncf",
        }
    }

    /// Parse a CLI name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "mf" => ModelKind::Mf,
            "ncf" => ModelKind::Ncf,
            _ => return None,
        })
    }
}

/// One cell of the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Model family.
    pub model: ModelKind,
    /// Attack arm.
    pub attack: AttackMethod,
    /// Defense arm.
    pub defense: DefenseKind,
    /// Malicious-client ratio ρ.
    pub rho: f64,
}

impl CellSpec {
    /// Stable, filename-safe identity, e.g. `fedrecattack_krum_rho0.05`.
    /// ρ is rendered with `f64`'s shortest-roundtrip formatting so
    /// distinct ratios can never collide in the id (and therefore in the
    /// derived seed or the output filename). MF cells keep the historical
    /// unprefixed spelling — their ids, derived seeds and filenames are
    /// byte-identical to pre-model-axis grids — while NCF cells carry an
    /// `ncf_` prefix.
    pub fn id(&self) -> String {
        let prefix = match self.model {
            ModelKind::Mf => "",
            ModelKind::Ncf => "ncf_",
        };
        format!(
            "{prefix}{}_{}_rho{}",
            self.attack.label().to_ascii_lowercase(),
            self.defense.label(),
            self.rho
        )
    }

    /// The cell's own seed: a hash of the master seed and the cell
    /// identity. Independent of grid composition, worker count and run
    /// order — the heart of the standalone-rerun byte-identity promise.
    pub fn cell_seed(&self, master: u64) -> u64 {
        let mut h = mix64(master ^ 0x5EED_CE11);
        for b in self.id().bytes() {
            h = mix64(h ^ b as u64);
        }
        h
    }
}

/// `splitmix64` finalizer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Cap on the users entering FedRecAttack's per-round loss when the grid
/// runs on a scale-free population: the paper's all-users formulation is
/// `O(n · m)` per round, which is exactly what population scale cannot
/// pay. Deterministic (the subset is drawn from the attack's own seeded
/// stream), and dense grids keep the uncapped formulation.
const SCALE_ATTACK_USER_CAP: usize = 1_024;

/// Hidden width of the interaction MLP in NCF grid cells. Fixed (like
/// the scale presets' `k`) so an NCF cell's identity is fully determined
/// by its [`CellSpec`].
const NCF_HIDDEN: usize = 16;

/// Grid configuration.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Experiment scale (training epochs, k) for dense populations.
    pub scale: Scale,
    /// Which population the grid runs on.
    pub population: Population,
    /// Where client state lives. Dense populations default to
    /// [`StoreBackend::Dense`] (byte-identical to the historical path);
    /// scale-free populations default to the sharded store.
    pub backend: StoreBackend,
    /// Master seed; every cell seed derives from it.
    pub seed: u64,
    /// Attack arms of the MF half of the grid (empty = no MF cells).
    pub attacks: Vec<AttackMethod>,
    /// Defense arms of the MF half of the grid.
    pub defenses: Vec<DefenseKind>,
    /// Malicious ratios ρ (shared by both model families).
    pub rhos: Vec<f64>,
    /// Attack arms of the NCF half of the grid (empty = no NCF cells,
    /// the default). NCF cells poison `V` only, through the same MF
    /// adversary registry — the paper's §IV generic choice.
    pub ncf_attacks: Vec<AttackMethod>,
    /// Defense arms of the NCF half of the grid.
    pub ncf_defenses: Vec<DefenseKind>,
    /// Emit one JSONL record every this many epochs (0 = final only).
    pub eval_every: usize,
    /// Override the scale's epoch count (None = scale default).
    pub epochs: Option<usize>,
    /// Worker threads fanning out over cells.
    pub workers: usize,
    /// Public-interaction proportion ξ (FedRecAttack's knowledge).
    pub xi: f64,
    /// Row budget κ.
    pub kappa: usize,
    /// Users covered by the streamed evaluation on scale-free populations
    /// (dense populations always evaluate the full model).
    pub eval_users: usize,
    /// Deterministic fault plan injected into every cell's round loop
    /// (`None` = perfect network). Each cell derives its own fault seed
    /// from the cell seed, so faulted grids keep the standalone-rerun
    /// byte-identity promise.
    pub faults: Option<FaultPlan>,
    /// How scale-free cells compute their streamed evaluation (dense
    /// populations always use the dense sweep and record `full`). All
    /// modes produce byte-identical metric fields; see [`mode_invariant`].
    pub eval_mode: EvalMode,
    /// Worker threads inside each streamed evaluation (results are
    /// thread-invariant; >1 only pays off when the grid itself is not
    /// already saturating the machine with cells).
    pub eval_threads: usize,
    /// Drive a live [`fedrec_serve::Service`] while each cell trains:
    /// every emitting epoch publishes the item snapshot, drains the probe
    /// requests queued at the previous one, and verifies each response
    /// byte-identical to offline evaluation of the snapshot its epoch tag
    /// names before the record is emitted. Adds the volatile
    /// `serve_publishes`/`served_epoch_lag` record fields; every
    /// deterministic field is untouched.
    pub serve: bool,
}

impl MatrixConfig {
    /// Default grid at the given scale: a representative attack subset,
    /// every defense, ρ ∈ {0, 5 %}, on the dense MovieLens-100K stand-in.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self {
            scale,
            population: Population::Dense(DatasetId::Ml100k),
            backend: StoreBackend::Dense,
            seed,
            attacks: vec![
                AttackMethod::None,
                AttackMethod::Random,
                AttackMethod::Popular,
                AttackMethod::FedRecAttack,
            ],
            defenses: DefenseKind::ALL.to_vec(),
            rhos: vec![0.0, 0.05],
            ncf_attacks: Vec::new(),
            ncf_defenses: Vec::new(),
            eval_every: 10,
            epochs: None,
            workers: default_workers(),
            xi: 0.05,
            kappa: 60,
            eval_users: 0,
            faults: None,
            eval_mode: EvalMode::Full,
            eval_threads: 1,
            serve: false,
        }
    }

    /// Grid over a scale-free population through the sharded store: the
    /// headline attack subset, every defense, the preset's tiny-ρ arms,
    /// short training (the attack lands in a handful of rounds at these
    /// participant counts).
    pub fn at_scale(preset: ScalePreset, seed: u64) -> Self {
        Self {
            population: Population::ScaleFree(preset),
            backend: StoreBackend::sharded(),
            rhos: preset.default_rhos(),
            eval_every: 0,
            epochs: Some(8),
            eval_users: preset.eval_users(),
            ..Self::new(Scale::Smoke, seed)
        }
    }

    /// The CI gate behind `repro matrix --smoke`: the full attack roster
    /// (minus the full-knowledge data-poisoning pair, whose surrogate
    /// training dominates a CI budget) × every defense × the tiny-ρ arms,
    /// on the 50k-user scale-free preset through the sharded store — under
    /// the [`FaultPlan::smoke`] fault preset, so the gate exercises
    /// dropouts, stragglers and quarantined corruption on every cell —
    /// with the live serving probe on, so every cell also serves verified
    /// mid-training top-K traffic. The NCF half of the grid runs a
    /// representative attack × defense subset (rather than the full
    /// roster) so the gate stays inside its CI wall-clock budget; NCF
    /// cells skip the serving probe (its offline verifier is MF
    /// dot-product math) and always evaluate in `full` mode.
    pub fn smoke(seed: u64) -> Self {
        Self {
            faults: Some(FaultPlan::smoke()),
            serve: true,
            ncf_attacks: vec![
                AttackMethod::Random,
                AttackMethod::Popular,
                AttackMethod::FedRecAttack,
            ],
            ncf_defenses: vec![
                DefenseKind::None,
                DefenseKind::TrimmedMean,
                DefenseKind::DetectorGated,
            ],
            attacks: vec![
                AttackMethod::None,
                AttackMethod::Random,
                AttackMethod::Bandwagon,
                AttackMethod::Popular,
                AttackMethod::ExplicitBoost,
                AttackMethod::PipAttack,
                AttackMethod::P3,
                AttackMethod::P4,
                AttackMethod::FedRecAttack,
            ],
            eval_every: 4,
            workers: 2,
            ..Self::at_scale(ScalePreset::Smoke50k, seed)
        }
    }

    /// The grid's cells, in deterministic (model, attack, defense, ρ)
    /// order: every MF cell first (in the historical order), then the
    /// NCF half.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::with_capacity(
            (self.attacks.len() * self.defenses.len()
                + self.ncf_attacks.len() * self.ncf_defenses.len())
                * self.rhos.len(),
        );
        let arms = [
            (ModelKind::Mf, &self.attacks, &self.defenses),
            (ModelKind::Ncf, &self.ncf_attacks, &self.ncf_defenses),
        ];
        for (model, attacks, defenses) in arms {
            for &attack in attacks.iter() {
                for &defense in defenses.iter() {
                    for &rho in &self.rhos {
                        out.push(CellSpec {
                            model,
                            attack,
                            defense,
                            rho,
                        });
                    }
                }
            }
        }
        out
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Keys every JSONL record carries, in emission order. The `f_*` keys are
/// the cumulative fault counters (dropped/timed-out uploads, late arrivals
/// applied, quarantined payloads, straggler retries, quorum-skipped
/// rounds); they read 0 when the grid runs without a fault plan, and they
/// are backend-independent — fault decisions are a pure function of
/// `(fault seed, round, client)`. The trailing eval keys describe the
/// record's evaluation pass: `eval_ms` (wall-clock, volatile), `eval_mode`
/// (`full`/`pruned`/`incremental`), and the deterministic work counters
/// `items_scored`/`items_skipped` (top-K selection dot products spent vs
/// avoided). The trailing serve keys describe the live serving probe
/// ([`MatrixConfig::serve`]): cumulative snapshot publishes and the worst
/// epochs-behind observed on any served response — both volatile, because
/// serving state is deliberately not checkpointed (a crash-resumed cell
/// restarts its service cold).
pub const RECORD_KEYS: [&str; 36] = [
    "cell",
    "model",
    "attack",
    "defense",
    "rho",
    "seed",
    "population",
    "backend",
    "users",
    "epoch",
    "final",
    "loss",
    "er5",
    "er10",
    "ndcg10",
    "hr10",
    "det_inspected",
    "det_flagged",
    "det_excluded",
    "det_precision",
    "det_recall",
    "excluded_total",
    "malicious",
    "rows_materialized",
    "participants_touched",
    "f_dropped",
    "f_late",
    "f_rejected",
    "f_retried",
    "f_skipped",
    "eval_ms",
    "eval_mode",
    "items_scored",
    "items_skipped",
    "serve_publishes",
    "served_epoch_lag",
];

/// The record keys whose values legitimately differ between the dense
/// and sharded backends of the same cell: the backend name itself, and
/// how many client rows the store holds (`n` eagerly vs. exactly the
/// ever-selected participants lazily). Everything else — losses, metrics,
/// detection counts, `participants_touched` — must be bit-identical.
pub const BACKEND_DEPENDENT_KEYS: [&str; 2] = ["backend", "rows_materialized"];

/// The record keys whose values are not a deterministic function of the
/// cell inputs alone: `eval_ms` is wall-clock time, and the serve probe
/// counters depend on serving state that is deliberately not checkpointed
/// (a crash-resumed cell restarts its service cold, so its cumulative
/// publish count and observed lag restart too). Every byte-identity gate
/// strips them first (see [`volatile_invariant`]).
pub const VOLATILE_KEYS: [&str; 3] = ["eval_ms", "serve_publishes", "served_epoch_lag"];

/// The record keys that legitimately differ between [`EvalMode`]s of the
/// same cell: the mode label and the work counters. The metric fields —
/// losses, ER/NDCG/HR, detection — must be bit-identical across modes.
pub const MODE_DEPENDENT_KEYS: [&str; 3] = ["eval_mode", "items_scored", "items_skipped"];

/// The one record key the model axis added: the cell's model family.
/// Projecting it away ([`model_invariant`]) reduces a post-model-axis MF
/// record to its pre-model-axis spelling — the before/after-refactor
/// byte-identity gate over the checked-in MF reference records.
pub const MODEL_DEPENDENT_KEYS: [&str; 1] = ["model"];

/// Remove `keys` fields from one flat JSONL record. None of the stripped
/// keys is ever first in a record (`"cell"` is), so the leading comma
/// always exists and the remainder stays valid JSON.
fn strip_keys(line: &str, keys: &[&str]) -> String {
    let mut out = line.to_string();
    for key in keys {
        let needle = format!(",\"{key}\":");
        if let Some(start) = out.find(&needle) {
            let vstart = start + needle.len();
            let vend = out[vstart..]
                .find([',', '}'])
                .map(|i| vstart + i)
                .unwrap_or(out.len());
            out.replace_range(start..vend, "");
        }
    }
    out
}

/// Normalize one JSONL record for dense-vs-sharded comparison by
/// removing the [`BACKEND_DEPENDENT_KEYS`] fields (and the volatile
/// timing field). Two backends of the same cell must agree byte-for-byte
/// after this projection — the invariant `repro matrix --smoke` enforces.
pub fn backend_invariant(line: &str) -> String {
    strip_keys(
        line,
        &[&BACKEND_DEPENDENT_KEYS[..], &VOLATILE_KEYS[..]].concat(),
    )
}

/// Normalize one JSONL record for rerun comparison by removing the
/// [`VOLATILE_KEYS`] fields. Two runs of the same cell under the same
/// config must agree byte-for-byte after this projection.
pub fn volatile_invariant(line: &str) -> String {
    strip_keys(line, &VOLATILE_KEYS)
}

/// Normalize one JSONL record for cross-[`EvalMode`] comparison by
/// removing the [`MODE_DEPENDENT_KEYS`] and volatile fields. The same
/// cell under `full`, `pruned` and `incremental` evaluation must agree
/// byte-for-byte after this projection — the mode-equivalence invariant
/// `repro matrix --smoke` enforces.
pub fn mode_invariant(line: &str) -> String {
    strip_keys(
        line,
        &[&MODE_DEPENDENT_KEYS[..], &VOLATILE_KEYS[..]].concat(),
    )
}

/// Normalize one JSONL record for cross-refactor comparison by removing
/// the [`MODEL_DEPENDENT_KEYS`] and volatile fields: an MF record so
/// projected must be byte-identical to the [`volatile_invariant`]
/// projection of the same cell's record from before the model axis
/// existed — the invariant guarding the `ClientModel` refactor.
pub fn model_invariant(line: &str) -> String {
    strip_keys(
        line,
        &[&MODEL_DEPENDENT_KEYS[..], &VOLATILE_KEYS[..]].concat(),
    )
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// The identity fields every record of a cell shares.
struct CellIdentity<'a> {
    cell: &'a CellSpec,
    id: &'a str,
    seed: u64,
    population: &'a str,
    backend: &'a str,
    users: usize,
}

/// The per-record training-progress fields: where the run is, plus the
/// live store counters (the `materialized ≤ touched` scale invariant,
/// observable from every record).
struct RecordPoint {
    epoch: usize,
    is_final: bool,
    loss: f32,
    rows_materialized: usize,
    participants_touched: usize,
    /// Cumulative snapshot publishes by the cell's live serving probe
    /// (0 when serving is off). Volatile: not checkpointed.
    serve_publishes: u64,
    /// Worst epochs-behind observed on any served probe response so far
    /// (0 when serving is off). Volatile: not checkpointed.
    served_epoch_lag: u64,
}

/// What one evaluation pass cost: wall-clock (volatile), the mode that
/// ran, and the deterministic dot-product counters.
pub struct EvalStats {
    /// Wall-clock milliseconds of the evaluation pass — the one record
    /// field that is *not* a deterministic function of the inputs.
    pub ms: u64,
    /// The [`EvalMode`] label that produced the report.
    pub mode: &'static str,
    /// Top-K selection dot products computed.
    pub items_scored: u64,
    /// Top-K selection dot products avoided (exclusions, pruned bounds,
    /// valid incremental caches).
    pub items_skipped: u64,
}

fn render_line(
    ident: &CellIdentity<'_>,
    point: &RecordPoint,
    rep: &EvalReport,
    eval: &EvalStats,
    det: Option<&RoundDefense>,
    excluded_total: usize,
    faults: (usize, usize, usize, usize, usize),
) -> String {
    let CellIdentity {
        cell,
        id,
        seed,
        population,
        backend,
        users,
    } = *ident;
    let RecordPoint {
        epoch,
        is_final,
        loss,
        rows_materialized,
        participants_touched,
        serve_publishes,
        served_epoch_lag,
    } = *point;
    let (inspected, flagged, excluded, precision, recall, malicious) = match det {
        Some(d) => (
            d.inspected,
            d.flagged,
            d.excluded,
            d.precision,
            d.recall,
            d.malicious,
        ),
        None => (0, 0, 0, 1.0, 1.0, 0),
    };
    let (f_dropped, f_late, f_rejected, f_retried, f_skipped) = faults;
    format!(
        "{{\"cell\":\"{id}\",\"model\":\"{}\",\"attack\":\"{}\",\"defense\":\"{}\",\"rho\":{},\"seed\":{seed},\
         \"population\":\"{population}\",\"backend\":\"{backend}\",\"users\":{users},\
         \"epoch\":{epoch},\"final\":{is_final},\"loss\":{},\"er5\":{},\"er10\":{},\
         \"ndcg10\":{},\"hr10\":{},\"det_inspected\":{inspected},\"det_flagged\":{flagged},\
         \"det_excluded\":{excluded},\"det_precision\":{},\"det_recall\":{},\
         \"excluded_total\":{excluded_total},\"malicious\":{malicious},\
         \"rows_materialized\":{},\"participants_touched\":{},\
         \"f_dropped\":{f_dropped},\"f_late\":{f_late},\"f_rejected\":{f_rejected},\
         \"f_retried\":{f_retried},\"f_skipped\":{f_skipped},\
         \"eval_ms\":{},\"eval_mode\":\"{}\",\"items_scored\":{},\"items_skipped\":{},\
         \"serve_publishes\":{serve_publishes},\"served_epoch_lag\":{served_epoch_lag}}}",
        cell.model.label(),
        cell.attack.label(),
        cell.defense.label(),
        num(cell.rho),
        num(loss as f64),
        num(rep.attack.er_at_5),
        num(rep.attack.er_at_10),
        num(rep.attack.ndcg_at_10),
        num(rep.hr_at_10),
        num(precision),
        num(recall),
        rows_materialized,
        participants_touched,
        eval.ms,
        eval.mode,
        eval.items_scored,
        eval.items_skipped,
    )
}

/// The grid-constant world every cell shares: population, split, targets.
/// Derived from the *master* seed only, so it is built once per matrix
/// run and borrowed by every worker — and a standalone cell rerun
/// rebuilds the identical world from the same config.
///
/// Dense populations carry the leave-one-out split and cold-item targets
/// of the historical path. Scale-free populations get a *read-time*
/// holdout instead: rebuilding the training set would force materializing
/// the lazily generated population, so a [`HoldoutView`] masks one item
/// per eligible user as rows are read, and the held items over the eval
/// prefix form the test set — HR@10 is real on scale-free cells. Targets
/// are the highest item ids — deterministic without a popularity sweep,
/// and of arbitrary popularity because the generator scatters ranks over
/// the id space with a seeded permutation.
struct GridWorld {
    /// The training population behind the engine's seam.
    source: Arc<dyn InteractionSource + Send + Sync>,
    /// Set for [`Population::Dense`] (same object as `source`).
    dense: Option<Arc<Dataset>>,
    test: TestSet,
    targets: Vec<u32>,
}

impl GridWorld {
    fn build(cfg: &MatrixConfig) -> Self {
        match cfg.population {
            Population::Dense(id) => {
                let full = cfg.scale.synthetic(id).generate(cfg.seed ^ 0xDA7A);
                let (train, test) = leave_one_out(&full, cfg.seed ^ 0x10);
                let targets = default_targets(&train, 1);
                let train = Arc::new(train);
                Self {
                    source: train.clone(),
                    dense: Some(train),
                    test,
                    targets,
                }
            }
            Population::ScaleFree(preset) => {
                let data = Arc::new(HoldoutView::new(
                    preset.config().generate(cfg.seed ^ 0xDA7A),
                    cfg.seed ^ 0x401D,
                ));
                let span = cfg.eval_users.clamp(1, data.num_users());
                let test = data.test_set(span);
                let m = data.num_items() as u32;
                Self {
                    source: data,
                    dense: None,
                    test,
                    targets: vec![m - 1],
                }
            }
        }
    }
}

/// Run one cell, streaming one JSONL record per eval epoch (plus a final
/// record) into `sink`. Returns the number of records written.
///
/// Everything stochastic derives from `cfg.seed` and the cell identity,
/// so repeated calls — in any process, under any worker count — produce
/// byte-identical output.
pub fn run_cell_into<W: Write>(
    cfg: &MatrixConfig,
    cell: &CellSpec,
    sink: &mut W,
) -> io::Result<usize> {
    run_cell_in(cfg, &GridWorld::build(cfg), cell, sink)
}

/// Shard size of the streamed scale-free evaluation. Fixed regardless of
/// backend and thread count: the shard partition fixes the metric
/// summation order, so dense and sharded backends produce identical
/// reports.
const EVAL_SHARD_ROWS: usize = 1_024;

/// One cell's evaluation strategy: the dense full-model sweep for dense
/// populations (the historical, byte-stable path), the streamed
/// partial-population pass — in the configured [`EvalMode`] — for
/// scale-free ones.
struct CellEval<'w> {
    dense: Option<&'w Dataset>,
    source: &'w (dyn InteractionSource + Send + Sync),
    test: &'w TestSet,
    evaluator: Evaluator,
    eval_users: usize,
    mode: EvalMode,
    threads: usize,
    /// `Some((hidden, k))` for NCF cells: scores go through the MLP
    /// instead of dot products, which rules out the pruned/incremental
    /// fast paths (their norm bounds are dot-product math) — NCF cells
    /// always run the full sweep and record `eval_mode:"full"`.
    ncf: Option<(usize, usize)>,
    /// Cross-epoch candidate caches for [`EvalMode::Incremental`]; lives
    /// for the cell's lifetime (one eval per epoch snapshot warms the
    /// next). A mutex only for interior mutability behind the harness's
    /// shared borrow — evals within one cell run strictly sequentially.
    /// Note: this state is *not* checkpointed; a crash-resumed cell
    /// re-evaluates cold, which changes `items_scored` but — by the
    /// exactness guarantee — never a metric byte.
    inc: Mutex<IncrementalEvalState>,
}

impl CellEval<'_> {
    /// The NCF sweep: score every item for each user in the eval span
    /// through the MLP and feed the same accumulator as the MF paths.
    /// Users are processed in fixed [`EVAL_SHARD_ROWS`] shards with
    /// per-shard accumulators merged in order — the identical summation
    /// order as the streamed MF sweep, so the report is independent of
    /// backend and thread count by construction.
    fn run_ncf(
        &self,
        hidden: usize,
        k: usize,
        items: &fedrec_linalg::Matrix,
        shared: &[f32],
        users: &dyn fedrec_recsys::UserRowSource,
    ) -> (EvalReport, EvalCounters) {
        let theta = Theta::from_flat(hidden, k, shared);
        let m = items.rows();
        let mut total = MetricsAccumulator::new();
        let mut row = vec![0.0f32; items.cols()];
        let mut scores = vec![0.0f32; m];
        let mut lo = 0usize;
        while lo < self.eval_users {
            let hi = (lo + EVAL_SHARD_ROWS).min(self.eval_users);
            let mut acc = MetricsAccumulator::new();
            for u in lo..hi {
                users.write_user_row(u, &mut row);
                NcfModel::scores_for_vector(&theta, items, &row, &mut scores);
                let mut src = DenseScores::new(&scores);
                acc.push_user_attack(
                    &mut src,
                    self.source.user_items(u),
                    self.evaluator.targets(),
                );
                if let Some(test_item) = self.test.get(u).copied().flatten() {
                    acc.push_user_hr(&mut src, test_item, self.evaluator.hr_negatives(u));
                }
            }
            total.merge(&acc);
            lo = hi;
        }
        let rep = EvalReport {
            attack: total.attack_metrics(),
            hr_at_10: total.hr_at_10(),
        };
        let counters = EvalCounters {
            items_scored: (self.eval_users as u64) * (m as u64),
            items_skipped: 0,
        };
        (rep, counters)
    }

    fn run(
        &self,
        items: &fedrec_linalg::Matrix,
        shared: &[f32],
        users: &dyn fedrec_recsys::UserRowSource,
    ) -> (EvalReport, EvalStats) {
        // fedrec-lint: allow(wall-clock) — times the eval pass for the volatile `eval_ms` record field; every identity gate strips it (volatile_invariant)
        let started = std::time::Instant::now();
        let (rep, counters, mode) = if let Some((hidden, k)) = self.ncf {
            let (rep, counters) = self.run_ncf(hidden, k, items, shared, users);
            (rep, counters, EvalMode::Full)
        } else {
            match self.dense {
                Some(train) => {
                    let model = crate::runner::assemble_model(items, users);
                    let rep = self.evaluator.evaluate(&model, train, self.test);
                    // The dense sweep scores every (user, item) pair.
                    let scored = (model.num_users() as u64) * (model.num_items() as u64);
                    (
                        rep,
                        EvalCounters {
                            items_scored: scored,
                            items_skipped: 0,
                        },
                        EvalMode::Full,
                    )
                }
                None => {
                    let mut inc = self.inc.lock().expect("eval state poisoned");
                    let state = match self.mode {
                        EvalMode::Incremental => Some(&mut *inc),
                        _ => None,
                    };
                    let (rep, counters) = self.evaluator.evaluate_user_range_mode(
                        items,
                        users,
                        self.source,
                        self.test,
                        0..self.eval_users,
                        self.threads,
                        EVAL_SHARD_ROWS,
                        self.mode,
                        state,
                    );
                    (rep, counters, self.mode)
                }
            }
        };
        let stats = EvalStats {
            ms: started.elapsed().as_millis() as u64,
            mode: mode.label(),
            items_scored: counters.items_scored,
            items_skipped: counters.items_skipped,
        };
        (rep, stats)
    }
}

/// Probe users submitted to the live serving layer at each emitting
/// epoch when [`MatrixConfig::serve`] is on.
const SERVE_PROBE_USERS: usize = 4;

/// Live-serving probe state for one cell ([`MatrixConfig::serve`]): a
/// real [`Service`] whose queue is fed a few probe users per emitting
/// epoch and drained at the next one, so grid runs continuously exercise
/// the batched serving path against genuine mid-training snapshots. The
/// previously published matrix is kept so every drained response can be
/// verified byte-identical to offline evaluation of exactly the snapshot
/// its epoch tag names — a torn or stale `V` cannot pass. None of this
/// state is checkpointed, which is why the two record fields it feeds
/// ([`VOLATILE_KEYS`]) are volatile.
struct CellServe {
    svc: Service,
    tx: mpsc::Sender<ServedTopK>,
    rx: mpsc::Receiver<ServedTopK>,
    /// The last published (epoch tag, item matrix): the offline reference
    /// for the probes queued against it, drained at the next tick.
    published: Option<(u64, fedrec_linalg::Matrix)>,
    lag_max: u64,
}

/// Everything a prepared cell carries besides the simulation itself:
/// the evaluation harness, the record identity fields, and the streaming
/// cadence. Split from [`Simulation`] so record-emitting hooks can borrow
/// it while the simulation is mutably driven.
struct CellHarness<'w> {
    eval: CellEval<'w>,
    cell: CellSpec,
    id: String,
    cseed: u64,
    population: &'static str,
    backend: &'static str,
    users: usize,
    epochs: usize,
    eval_every: usize,
    /// Live serving probe; `None` unless [`MatrixConfig::serve`] is on.
    /// A mutex for interior mutability behind the hooks' shared borrow —
    /// ticks within one cell run strictly sequentially.
    serve: Option<Mutex<CellServe>>,
}

impl CellHarness<'_> {
    fn line(
        &self,
        point: &RecordPoint,
        rep: &EvalReport,
        eval: &EvalStats,
        hist: &TrainingHistory,
    ) -> String {
        render_line(
            &CellIdentity {
                cell: &self.cell,
                id: self.id.as_str(),
                seed: self.cseed,
                population: self.population,
                backend: self.backend,
                users: self.users,
            },
            point,
            rep,
            eval,
            hist.defense.last(),
            hist.total_excluded(),
            hist.fault_totals(),
        )
    }

    /// The mid-run record for an epoch snapshot, if this epoch emits one
    /// (the final epoch is covered by the summary record instead).
    fn snapshot_line(&self, snap: &Snapshot<'_>, hist: &TrainingHistory) -> Option<String> {
        let done = snap.epoch + 1;
        if self.eval_every == 0 || !done.is_multiple_of(self.eval_every) || done == self.epochs {
            return None;
        }
        let (serve_publishes, served_epoch_lag) = self.serve_tick(done, snap.items, snap.users);
        let (rep, stats) = self.eval.run(snap.items, snap.shared, snap.users);
        Some(self.line(
            &RecordPoint {
                epoch: done,
                is_final: false,
                loss: snap.loss,
                rows_materialized: snap.rows_materialized,
                participants_touched: snap.participants_touched,
                serve_publishes,
                served_epoch_lag,
            },
            &rep,
            &stats,
            hist,
        ))
    }

    /// The summary record for a finished run.
    fn final_line(&self, sim: &Simulation, history: &TrainingHistory) -> String {
        let (serve_publishes, served_epoch_lag) =
            self.serve_tick(self.epochs, sim.items(), sim.user_rows());
        let (rep, stats) = self.eval.run(sim.items(), sim.shared(), sim.user_rows());
        self.line(
            &RecordPoint {
                epoch: self.epochs,
                is_final: true,
                loss: history.losses.last().copied().unwrap_or(0.0),
                rows_materialized: sim.rows_materialized(),
                participants_touched: sim.participants_touched(),
                serve_publishes,
                served_epoch_lag,
            },
            &rep,
            &stats,
            history,
        )
    }

    /// One live-serving step at an emitting epoch (`done` epochs have
    /// finished): drain the probe requests queued at the previous tick —
    /// verifying every response byte-identical to offline evaluation of
    /// the snapshot its epoch tag names, with the user rows the drain
    /// itself served from — then publish this epoch's snapshot and queue
    /// fresh probes against it. Returns the `(serve_publishes,
    /// served_epoch_lag)` record fields; `(0, 0)` when serving is off.
    fn serve_tick(
        &self,
        done: usize,
        items: &fedrec_linalg::Matrix,
        users: &dyn fedrec_recsys::UserRowSource,
    ) -> (u64, u64) {
        let Some(state) = &self.serve else {
            return (0, 0);
        };
        let mut st = state.lock().expect("serve state poisoned");
        let k = st.svc.config().k;
        if let Some((prev_tag, prev_items)) = st.published.take() {
            let served = st.svc.drain_now(users, 1);
            let pruned = PrunedItems::build(&prev_items);
            let mut row = vec![0.0f32; prev_items.cols()];
            let mut seen = 0usize;
            while let Ok(resp) = st.rx.try_recv() {
                seen += 1;
                assert_eq!(
                    resp.epoch, prev_tag,
                    "serve identity (cell {}): response tagged epoch {} but only \
                     epoch {prev_tag} was published when it was queued",
                    self.id, resp.epoch
                );
                st.lag_max = st.lag_max.max((done as u64).saturating_sub(resp.epoch));
                users.write_user_row(resp.user as usize, &mut row);
                let mut offline = Vec::new();
                PrunedScores::new(&pruned, &prev_items, &row).top_ranked_excluding(
                    &[],
                    k,
                    &mut offline,
                );
                let matches = resp.top.len() == offline.len()
                    && resp
                        .top
                        .iter()
                        .zip(&offline)
                        .all(|(s, o)| s.0 == o.0 && s.1.to_bits() == o.1.to_bits());
                assert!(
                    matches,
                    "serve identity (cell {}): user {} response at epoch {prev_tag} is \
                     not byte-identical to offline evaluation of that snapshot",
                    self.id, resp.user
                );
            }
            assert_eq!(
                seen, served,
                "serve identity (cell {}): drained {served} responses but received {seen}",
                self.id
            );
        }
        st.svc.publish(done as u64, items);
        st.published = Some((done as u64, items.clone()));
        for u in 0..self.users.min(SERVE_PROBE_USERS) as u32 {
            let tx = st.tx.clone();
            assert!(st.svc.submit(u, Vec::new(), tx), "serve queue closed");
        }
        (st.svc.publish_count(), st.lag_max)
    }
}

/// Build one cell's simulation and harness from the shared world. All
/// construction derives from `cfg` and the cell identity, so two calls
/// produce simulations on identical trajectories — the property the
/// crash-resume path leans on when it rebuilds a cell from scratch before
/// restoring a checkpoint. `threads` overrides the client-round worker
/// count (`None` keeps the scale default); results are thread-invariant
/// either way.
fn prepare_cell<'w>(
    cfg: &MatrixConfig,
    world: &'w GridWorld,
    cell: &CellSpec,
    threads: Option<usize>,
) -> (Simulation, CellHarness<'w>) {
    let GridWorld {
        source,
        dense,
        test,
        targets,
    } = world;
    let cseed = cell.cell_seed(cfg.seed);
    let mut fed = cfg.scale.fed_config(cseed);
    if let Some(epochs) = cfg.epochs {
        fed.epochs = epochs;
    }
    if let Some(t) = threads {
        fed.threads = t;
    }
    let scale_free = match cfg.population {
        Population::ScaleFree(preset) => {
            fed.client_fraction = preset.client_fraction();
            true
        }
        Population::Dense(_) => false,
    };
    let num_malicious = malicious_count(source.num_users(), cell.rho);
    let env = match dense {
        Some(train) => AttackEnv::over_dataset(train, targets),
        None => AttackEnv::over(&**source, targets),
    }
    .malicious(num_malicious)
    .kappa(cfg.kappa)
    .k(fed.k)
    .seed(cseed ^ 0xA7)
    .public(cfg.xi, cseed ^ 0xD1)
    .max_attack_users(scale_free.then_some(SCALE_ATTACK_USER_CAP));
    let adversary = build_adversary(cell.attack, &env);
    let pipeline = cell.defense.build(num_malicious);
    let mut sim = match cell.model {
        ModelKind::Mf => Simulation::with_store(
            source.clone(),
            fed,
            adversary,
            num_malicious,
            pipeline,
            cfg.backend,
        ),
        // NCF cells share the MF adversary registry: poisoning `V` only
        // is the paper's §IV generic choice, and it keeps every attack's
        // checkpoint support intact.
        ModelKind::Ncf => Simulation::with_model(
            source.clone(),
            fed,
            Box::new(NcfClientModel::new(NCF_HIDDEN, fed.k)),
            adversary,
            num_malicious,
            pipeline,
            cfg.backend,
        ),
    };
    if let Some(plan) = cfg.faults {
        sim.enable_faults(plan, cseed ^ 0xFA17);
    }
    let evaluator = Evaluator::new(&**source, test, targets, cseed ^ 0xE7);
    let eval_users = if scale_free {
        cfg.eval_users.clamp(1, source.num_users())
    } else {
        source.num_users()
    };
    let backend_label = match cfg.backend {
        StoreBackend::Dense => "dense",
        StoreBackend::Sharded { .. } => "sharded",
    };
    let harness = CellHarness {
        eval: CellEval {
            dense: dense.as_deref(),
            source: &**source,
            test,
            evaluator,
            eval_users,
            mode: cfg.eval_mode,
            threads: cfg.eval_threads.max(1),
            ncf: (cell.model == ModelKind::Ncf).then_some((NCF_HIDDEN, fed.k)),
            inc: Mutex::new(IncrementalEvalState::new()),
        },
        cell: *cell,
        id: cell.id(),
        cseed,
        population: cfg.population.label(),
        backend: backend_label,
        users: source.num_users(),
        epochs: fed.epochs,
        eval_every: cfg.eval_every,
        // The serve probe verifies responses against offline MF
        // dot-product evaluation (`PrunedScores`), which does not apply
        // to MLP scores — NCF cells train and evaluate without it and
        // report the zero serve fields.
        serve: (cfg.serve && cell.model == ModelKind::Mf).then(|| {
            let (tx, rx) = mpsc::channel();
            Mutex::new(CellServe {
                svc: Service::new(ServeConfig::default()),
                tx,
                rx,
                published: None,
                lag_max: 0,
            })
        }),
    };
    (sim, harness)
}

fn run_cell_in<W: Write>(
    cfg: &MatrixConfig,
    world: &GridWorld,
    cell: &CellSpec,
    sink: &mut W,
) -> io::Result<usize> {
    let (mut sim, harness) = prepare_cell(cfg, world, cell, None);
    let mut history = TrainingHistory::new();
    let mut written = 0usize;
    let mut write_err: Option<io::Error> = None;
    {
        let sink = &mut *sink;
        let written = &mut written;
        let write_err = &mut write_err;
        let harness = &harness;
        let mut hook = move |snap: &Snapshot<'_>, hist: &mut TrainingHistory| {
            if write_err.is_some() {
                return;
            }
            if let Some(line) = harness.snapshot_line(snap, hist) {
                match writeln!(sink, "{line}") {
                    Ok(()) => *written += 1,
                    Err(e) => *write_err = Some(e),
                }
            }
        };
        sim.run_segment(Some(&mut hook), &mut history, harness.epochs);
    }
    if let Some(e) = write_err {
        return Err(e);
    }
    let line = harness.final_line(&sim, &history);
    writeln!(sink, "{line}")?;
    Ok(written + 1)
}

/// Run one cell into memory; the returned lines match what
/// [`run_matrix`] writes to the cell's file, byte for byte.
pub fn run_cell(cfg: &MatrixConfig, cell: &CellSpec) -> Vec<String> {
    cell_lines(cfg, &GridWorld::build(cfg), cell)
}

fn cell_lines(cfg: &MatrixConfig, world: &GridWorld, cell: &CellSpec) -> Vec<String> {
    let mut buf = Vec::new();
    run_cell_in(cfg, world, cell, &mut buf).expect("in-memory sink cannot fail");
    let text = String::from_utf8(buf).expect("records are UTF-8");
    text.lines().map(String::from).collect()
}

/// Order-stable digest of an item matrix's raw `f32` bit patterns — the
/// equality probe of the crash-resume gate (full matrices are too large
/// to diff in a report).
pub fn items_digest(items: &fedrec_linalg::Matrix) -> u64 {
    let mut h = 0x17E6_D16Eu64;
    for &x in items.as_slice() {
        h = mix64(h ^ x.to_bits() as u64);
    }
    h
}

/// Run one cell straight through at an explicit client-round thread
/// count, returning its JSONL lines and the final item-matrix digest —
/// the reference side of the crash-resume identity gate.
pub fn run_cell_traced(cfg: &MatrixConfig, cell: &CellSpec, threads: usize) -> (Vec<String>, u64) {
    let world = GridWorld::build(cfg);
    let (mut sim, harness) = prepare_cell(cfg, &world, cell, Some(threads));
    let mut history = TrainingHistory::new();
    let mut lines = Vec::new();
    {
        let lines = &mut lines;
        let harness = &harness;
        let mut hook = move |snap: &Snapshot<'_>, hist: &mut TrainingHistory| {
            if let Some(line) = harness.snapshot_line(snap, hist) {
                lines.push(line);
            }
        };
        sim.run_segment(Some(&mut hook), &mut history, harness.epochs);
    }
    lines.push(harness.final_line(&sim, &history));
    (lines, items_digest(sim.items()))
}

/// Run one cell but kill it after `kill_after` epochs: checkpoint, drop
/// the simulation, rebuild the cell from scratch (exactly as a restarted
/// process would), restore the checkpoint, and finish. Returns the
/// concatenated JSONL lines and the final item-matrix digest; both must
/// be byte-identical to [`run_cell_traced`] of the same cell at *any*
/// thread count — the crash-resume gate `repro matrix --smoke` enforces.
pub fn run_cell_resumed(
    cfg: &MatrixConfig,
    cell: &CellSpec,
    kill_after: usize,
    threads: usize,
) -> (Vec<String>, u64) {
    let world = GridWorld::build(cfg);
    let mut lines = Vec::new();
    let blob = {
        let (mut sim, harness) = prepare_cell(cfg, &world, cell, Some(threads));
        let mut history = TrainingHistory::new();
        let stop = kill_after.min(harness.epochs);
        {
            let lines = &mut lines;
            let harness = &harness;
            let mut hook = move |snap: &Snapshot<'_>, hist: &mut TrainingHistory| {
                if let Some(line) = harness.snapshot_line(snap, hist) {
                    lines.push(line);
                }
            };
            sim.run_segment(Some(&mut hook), &mut history, stop);
        }
        sim.checkpoint(&history)
        // sim dropped here: the "crash".
    };
    let (mut sim, harness) = prepare_cell(cfg, &world, cell, Some(threads));
    let mut history = sim.restore(&blob);
    {
        let lines = &mut lines;
        let harness = &harness;
        let mut hook = move |snap: &Snapshot<'_>, hist: &mut TrainingHistory| {
            if let Some(line) = harness.snapshot_line(snap, hist) {
                lines.push(line);
            }
        };
        sim.run_segment(Some(&mut hook), &mut history, harness.epochs);
    }
    lines.push(harness.final_line(&sim, &history));
    (lines, items_digest(sim.items()))
}

/// Fan `cells` out across `workers` scoped threads with a shared atomic
/// cursor; results come back in cell order.
fn fan_out<T, F>(cells: &[CellSpec], workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &CellSpec) -> T + Sync,
{
    let workers = workers.clamp(1, cells.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(cells.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let out = run(i, cell);
                slots.lock().expect("worker panicked").push((i, out));
            });
        }
    });
    let mut slots = slots.into_inner().expect("worker panicked");
    slots.sort_by_key(|(i, _)| *i);
    slots.into_iter().map(|(_, t)| t).collect()
}

/// Run the whole grid in memory (no IO): one `Vec` of JSONL lines per
/// cell, in cell order. Used by tests and the throughput bench.
pub fn run_matrix_collect(cfg: &MatrixConfig) -> Vec<(CellSpec, Vec<String>)> {
    let world = GridWorld::build(cfg);
    let cells = cfg.cells();
    let lines = fan_out(&cells, cfg.workers, |_, cell| cell_lines(cfg, &world, cell));
    cells.into_iter().zip(lines).collect()
}

/// One written cell of a matrix run.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell.
    pub cell: CellSpec,
    /// Its JSONL file.
    pub path: PathBuf,
    /// Records written.
    pub records: usize,
}

/// Run the whole grid across worker threads, streaming each cell into
/// `<out_dir>/<cell-id>.jsonl`. Returns the outcomes in cell order.
pub fn run_matrix(cfg: &MatrixConfig, out_dir: &Path) -> io::Result<Vec<CellOutcome>> {
    std::fs::create_dir_all(out_dir)?;
    let world = GridWorld::build(cfg);
    let cells = cfg.cells();
    let results = fan_out(&cells, cfg.workers, |_, cell| -> io::Result<CellOutcome> {
        let path = out_dir.join(format!("{}.jsonl", cell.id()));
        let file = std::fs::File::create(&path)?;
        let mut sink = BufWriter::new(file);
        let records = run_cell_in(cfg, &world, cell, &mut sink)?;
        sink.flush()?;
        Ok(CellOutcome {
            cell: *cell,
            path,
            records,
        })
    });
    results.into_iter().collect()
}

/// Parse one JSONL record emitted by this module into `(key, value)`
/// pairs (string values unquoted, everything else verbatim). This is a
/// deliberately minimal parser for the flat, escape-free objects
/// [`run_cell_into`] writes — not a general JSON parser.
pub fn parse_record(line: &str) -> Option<Vec<(String, String)>> {
    let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut pairs = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        rest = rest.strip_prefix(',').unwrap_or(rest);
        rest = rest.strip_prefix('"')?;
        let end = rest.find('"')?;
        let key = rest[..end].to_string();
        rest = rest[end + 1..].strip_prefix(':')?;
        if let Some(after_quote) = rest.strip_prefix('"') {
            let end = after_quote.find('"')?;
            pairs.push((key, after_quote[..end].to_string()));
            rest = &after_quote[end + 1..];
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            if end == 0 {
                return None;
            }
            pairs.push((key, rest[..end].to_string()));
            rest = &rest[end..];
        }
    }
    Some(pairs)
}

/// Validate one record line: parseable, carries every [`RECORD_KEYS`]
/// key, and its metric fields are numbers in range.
pub fn validate_record(line: &str) -> Result<(), String> {
    let pairs = parse_record(line).ok_or_else(|| format!("unparseable record: {line}"))?;
    let get = |key: &str| -> Option<&str> {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    for key in RECORD_KEYS {
        if get(key).is_none() {
            return Err(format!("record missing key {key:?}: {line}"));
        }
    }
    for key in [
        "er5",
        "er10",
        "ndcg10",
        "hr10",
        "det_precision",
        "det_recall",
    ] {
        let raw = get(key).expect("checked above");
        let v: f64 = raw
            .parse()
            .map_err(|_| format!("{key} is not a number ({raw:?}): {line}"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{key} out of range ({v}): {line}"));
        }
    }
    for key in [
        "eval_ms",
        "items_scored",
        "items_skipped",
        "serve_publishes",
        "served_epoch_lag",
    ] {
        let raw = get(key).expect("checked above");
        raw.parse::<u64>()
            .map_err(|_| format!("{key} is not a count ({raw:?}): {line}"))?;
    }
    let mode = get("eval_mode").expect("checked above");
    if EvalMode::parse(mode).is_none() {
        return Err(format!("eval_mode is not a known mode ({mode:?}): {line}"));
    }
    let model = get("model").expect("checked above");
    if ModelKind::parse(model).is_none() {
        return Err(format!("model is not a known family ({model:?}): {line}"));
    }
    match get("final") {
        Some("true") | Some("false") => Ok(()),
        other => Err(format!("final is not a bool ({other:?}): {line}")),
    }
}

/// Render the defended paper table from a matrix run directory: one row
/// per cell from its final record, over **every** `.jsonl` file in the
/// directory — including cells left over from earlier runs with other
/// grids. To report on exactly one run's cells, use
/// [`matrix_report_from`] with that run's outcome paths.
pub fn matrix_report(dir: &Path) -> io::Result<Table> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    entries.sort();
    matrix_report_from(&entries)
}

/// Render the defended paper table from specific cell files (one row per
/// file, from its final record).
pub fn matrix_report_from(paths: &[PathBuf]) -> io::Result<Table> {
    let mut rows: Vec<(String, String, f64, Vec<String>)> = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path)?;
        let finals: Vec<Vec<(String, String)>> = text
            .lines()
            .filter_map(parse_record)
            .filter(|pairs| pairs.iter().any(|(k, v)| k == "final" && v == "true"))
            .collect();
        let Some(pairs) = finals.last() else { continue };
        let get = |key: &str| -> String {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        let fmt = |key: &str| -> String {
            get(key)
                .parse::<f64>()
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|_| "?".to_string())
        };
        rows.push((
            get("attack"),
            get("defense"),
            get("rho").parse().unwrap_or(f64::NAN),
            vec![
                get("attack"),
                get("defense"),
                get("rho"),
                fmt("er10"),
                fmt("hr10"),
                fmt("det_precision"),
                fmt("det_recall"),
                get("excluded_total"),
            ],
        ));
    }
    rows.sort_by(|a, b| {
        (a.0.as_str(), a.1.as_str())
            .cmp(&(b.0.as_str(), b.1.as_str()))
            .then(a.2.total_cmp(&b.2))
    });
    let mut t = Table::new(
        "Scenario matrix: attack x defense x rho (final epoch)",
        vec![
            "Attack",
            "Defense",
            "rho",
            "ER@10",
            "HR@10",
            "det precision",
            "det recall",
            "excluded",
        ],
    );
    for (_, _, _, row) in rows {
        t.push_row(row);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strip the volatile timing field from every line — the projection
    /// under which reruns are byte-identical.
    fn vol(lines: &[String]) -> Vec<String> {
        lines.iter().map(|l| volatile_invariant(l)).collect()
    }

    fn tiny_cfg(seed: u64) -> MatrixConfig {
        MatrixConfig {
            attacks: vec![AttackMethod::None, AttackMethod::Random],
            defenses: vec![DefenseKind::None, DefenseKind::DetectorGated],
            rhos: vec![0.0, 0.05],
            eval_every: 2,
            epochs: Some(4),
            workers: 2,
            ..MatrixConfig::new(Scale::Smoke, seed)
        }
    }

    #[test]
    fn defense_kind_parse_roundtrips() {
        for d in DefenseKind::ALL {
            assert_eq!(DefenseKind::parse(d.label()), Some(d), "{}", d.label());
        }
        assert_eq!(DefenseKind::parse("garbage"), None);
    }

    #[test]
    fn cell_ids_are_unique_and_filename_safe() {
        // Include near-identical rhos that a fixed-precision format would
        // collapse onto the same id (and therefore the same seed + file).
        let cells = MatrixConfig {
            rhos: vec![0.0, 0.0001, 0.0004, 0.001, 0.0014, 0.05],
            ..MatrixConfig::new(Scale::Smoke, 1)
        }
        .cells();
        let mut ids: Vec<String> = cells.iter().map(CellSpec::id).collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate cell ids");
        for id in &ids {
            assert!(
                id.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)),
                "unsafe filename: {id}"
            );
        }
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let cells = MatrixConfig::new(Scale::Smoke, 7).cells();
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.cell_seed(7)).collect();
        assert_eq!(
            seeds,
            cells.iter().map(|c| c.cell_seed(7)).collect::<Vec<_>>()
        );
        seeds.sort_unstable();
        let before = seeds.len();
        seeds.dedup();
        assert_eq!(seeds.len(), before, "cell seed collision");
        // A different master seed moves every cell.
        assert_ne!(cells[0].cell_seed(7), cells[0].cell_seed(8));
    }

    #[test]
    fn records_parse_and_validate() {
        let cfg = tiny_cfg(3);
        let cell = CellSpec {
            model: ModelKind::Mf,
            attack: AttackMethod::Random,
            defense: DefenseKind::DetectorGated,
            rho: 0.05,
        };
        let lines = run_cell(&cfg, &cell);
        // 4 epochs, eval every 2, final epoch folded into the summary
        // record: epochs 2 (hook) and 4 (final).
        assert_eq!(lines.len(), 2);
        for line in &lines {
            validate_record(line).unwrap();
        }
        let last = parse_record(lines.last().unwrap()).unwrap();
        let get = |k: &str| {
            last.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("final"), "true");
        assert_eq!(get("attack"), "Random");
        assert_eq!(get("defense"), "detector-gated");
        assert_eq!(get("epoch"), "4");
    }

    /// The acceptance criterion: rerunning any single cell standalone
    /// reproduces its records byte-identically (modulo `eval_ms`, the one
    /// wall-clock field).
    #[test]
    fn standalone_cell_rerun_is_byte_identical() {
        let cfg = tiny_cfg(11);
        let all = run_matrix_collect(&cfg);
        assert_eq!(all.len(), 8);
        for (cell, lines) in &all {
            let rerun = run_cell(&cfg, cell);
            assert_eq!(
                vol(&rerun),
                vol(lines),
                "cell {} diverged on rerun",
                cell.id()
            );
        }
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let base = tiny_cfg(13);
        let one = run_matrix_collect(&MatrixConfig {
            workers: 1,
            ..base.clone()
        });
        let three = run_matrix_collect(&MatrixConfig { workers: 3, ..base });
        let flat = |v: &[(CellSpec, Vec<String>)]| -> Vec<String> {
            v.iter().flat_map(|(_, l)| vol(l)).collect()
        };
        assert_eq!(flat(&one), flat(&three));
    }

    #[test]
    fn matrix_writes_files_and_report_renders() {
        let dir =
            std::env::temp_dir().join(format!("fedrec-matrix-test-{}-report", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = tiny_cfg(17);
        cfg.attacks = vec![AttackMethod::None, AttackMethod::Random];
        cfg.defenses = vec![DefenseKind::None];
        cfg.rhos = vec![0.05];
        let outcomes = run_matrix(&cfg, &dir).unwrap();
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.path.is_file());
            assert_eq!(o.records, 2);
            let text = std::fs::read_to_string(&o.path).unwrap();
            let written: Vec<String> = text.lines().map(String::from).collect();
            let rerun = run_cell(&cfg, &o.cell);
            assert_eq!(
                vol(&written),
                vol(&rerun),
                "file bytes differ from standalone rerun"
            );
        }
        let table = matrix_report(&dir).unwrap();
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.header.len(), 8);
        assert!(table.to_markdown().contains("Random"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rho_zero_keeps_vacuous_detection_metrics() {
        // Regression guard for the recall convention fix: the rho = 0
        // baseline row must report perfect (vacuous) recall, not 0.0.
        let cfg = tiny_cfg(19);
        let cell = CellSpec {
            model: ModelKind::Mf,
            attack: AttackMethod::None,
            defense: DefenseKind::None,
            rho: 0.0,
        };
        let lines = run_cell(&cfg, &cell);
        for line in &lines {
            let pairs = parse_record(line).unwrap();
            let get = |k: &str| {
                pairs
                    .iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v.clone())
                    .unwrap()
            };
            assert_eq!(get("malicious"), "0");
            let recall: f64 = get("det_recall").parse().unwrap();
            assert_eq!(recall, 1.0, "vacuous recall must be 1.0: {line}");
        }
    }

    fn tiny_scale_cfg(seed: u64) -> MatrixConfig {
        MatrixConfig {
            attacks: vec![AttackMethod::None, AttackMethod::Random],
            defenses: vec![DefenseKind::None, DefenseKind::DetectorGated],
            eval_every: 2,
            epochs: Some(4),
            workers: 2,
            ..MatrixConfig::at_scale(ScalePreset::Tiny, seed)
        }
    }

    fn record_field(line: &str, key: &str) -> String {
        parse_record(line)
            .unwrap()
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing {key}: {line}"))
    }

    #[test]
    fn population_parse_roundtrips() {
        for p in [
            ScalePreset::Million,
            ScalePreset::Smoke50k,
            ScalePreset::Tiny,
        ] {
            assert_eq!(
                Population::parse(p.label()),
                Some(Population::ScaleFree(p)),
                "{}",
                p.label()
            );
        }
        assert_eq!(
            Population::parse("ml100k"),
            Some(Population::Dense(DatasetId::Ml100k))
        );
        assert_eq!(Population::parse("garbage"), None);
    }

    #[test]
    fn smoke_grid_runs_on_the_sharded_scale_free_preset() {
        let cfg = MatrixConfig::smoke(1);
        assert_eq!(cfg.population, Population::ScaleFree(ScalePreset::Smoke50k));
        assert_eq!(cfg.backend, StoreBackend::sharded());
        assert!(cfg.attacks.len() >= 9, "full attack roster (minus P1/P2)");
        assert_eq!(cfg.defenses.len(), DefenseKind::ALL.len());
        assert!(
            !cfg.attacks.contains(&AttackMethod::P1) && !cfg.attacks.contains(&AttackMethod::P2),
            "full-knowledge pair runs via the dense path, not the CI gate"
        );
    }

    #[test]
    fn backend_invariant_strips_exactly_the_backend_fields() {
        let line = "{\"cell\":\"x\",\"backend\":\"sharded\",\"users\":600,\
                    \"rows_materialized\":12,\"participants_touched\":30}";
        let stripped = backend_invariant(line);
        assert_eq!(
            stripped,
            "{\"cell\":\"x\",\"users\":600,\"participants_touched\":30}"
        );
        // Idempotent, and identical for the dense spelling of the cell.
        assert_eq!(backend_invariant(&stripped), stripped);
        let dense = "{\"cell\":\"x\",\"backend\":\"dense\",\"users\":600,\
                     \"rows_materialized\":600,\"participants_touched\":30}";
        assert_eq!(backend_invariant(dense), stripped);
        // The volatile timing field is stripped too — dense and sharded
        // runs never agree on wall-clock.
        let timed = "{\"cell\":\"x\",\"backend\":\"dense\",\"users\":600,\
                     \"rows_materialized\":600,\"eval_ms\":17,\
                     \"participants_touched\":30}";
        assert_eq!(backend_invariant(timed), stripped);
    }

    #[test]
    fn volatile_and_mode_projections_strip_their_fields() {
        let line = "{\"cell\":\"x\",\"eval_ms\":42,\"eval_mode\":\"pruned\",\
                    \"items_scored\":100,\"items_skipped\":900,\"hr10\":0.5}";
        assert_eq!(
            volatile_invariant(line),
            "{\"cell\":\"x\",\"eval_mode\":\"pruned\",\"items_scored\":100,\
             \"items_skipped\":900,\"hr10\":0.5}"
        );
        assert_eq!(mode_invariant(line), "{\"cell\":\"x\",\"hr10\":0.5}");
        // Idempotent.
        assert_eq!(mode_invariant(&mode_invariant(line)), mode_invariant(line));
    }

    /// The tentpole invariant at miniature scale: the same attacked,
    /// defended grid over a scale-free population is byte-identical
    /// between the dense and sharded backends (modulo the backend
    /// fields), and the sharded store never holds more client rows than
    /// participants were touched.
    #[test]
    fn scale_free_grid_is_backend_invariant_and_lazy() {
        let sharded_cfg = tiny_scale_cfg(29);
        let dense_cfg = MatrixConfig {
            backend: StoreBackend::Dense,
            ..sharded_cfg.clone()
        };
        let sharded = run_matrix_collect(&sharded_cfg);
        let dense = run_matrix_collect(&dense_cfg);
        assert_eq!(sharded.len(), 8);
        let mut saw_lazy_win = false;
        for ((cell, s_lines), (_, d_lines)) in sharded.iter().zip(&dense) {
            assert_eq!(s_lines.len(), d_lines.len(), "cell {}", cell.id());
            for (s, d) in s_lines.iter().zip(d_lines) {
                assert_eq!(
                    backend_invariant(s),
                    backend_invariant(d),
                    "cell {} diverged across backends",
                    cell.id()
                );
                assert_eq!(record_field(s, "backend"), "sharded");
                assert_eq!(record_field(d, "backend"), "dense");
                assert_eq!(record_field(s, "population"), "scalefree-tiny");
                let rows: usize = record_field(s, "rows_materialized").parse().unwrap();
                let touched: usize = record_field(s, "participants_touched").parse().unwrap();
                let users: usize = record_field(s, "users").parse().unwrap();
                assert!(rows <= touched, "lazy invariant violated: {s}");
                if rows < users {
                    saw_lazy_win = true;
                }
                // Dense stores are eager by definition.
                assert_eq!(record_field(d, "rows_materialized"), users.to_string());
            }
            validate_record(s_lines.last().unwrap()).unwrap();
        }
        assert!(saw_lazy_win, "sharded runs must not materialize everyone");
    }

    /// The live serving probe changes the two volatile serve fields and
    /// nothing else: a cell run with serving on is byte-identical to the
    /// same cell with serving off after [`volatile_invariant`], and the
    /// serve fields themselves report real publishes and real staleness
    /// (each drain serves probes queued one emitting epoch earlier).
    /// `serve_tick` panics internally if any served response is not
    /// byte-identical to offline evaluation of its tagged snapshot, so
    /// this test also gates the serve identity contract mid-training.
    #[test]
    fn serving_probe_is_volatile_only_and_reports_staleness() {
        let off_cfg = tiny_scale_cfg(41);
        let on_cfg = MatrixConfig {
            serve: true,
            ..off_cfg.clone()
        };
        let cell = CellSpec {
            model: ModelKind::Mf,
            attack: AttackMethod::Random,
            defense: DefenseKind::NormClip,
            rho: 0.01,
        };
        let off = run_cell(&off_cfg, &cell);
        let on = run_cell(&on_cfg, &cell);
        let vol = |lines: &[String]| -> Vec<String> {
            lines.iter().map(|l| volatile_invariant(l)).collect()
        };
        assert_eq!(vol(&on), vol(&off), "serving leaked into a record byte");
        for line in &off {
            assert_eq!(record_field(line, "serve_publishes"), "0");
            assert_eq!(record_field(line, "served_epoch_lag"), "0");
        }
        let publishes: Vec<u64> = on
            .iter()
            .map(|l| record_field(l, "serve_publishes").parse().unwrap())
            .collect();
        assert!(
            publishes.windows(2).all(|w| w[0] < w[1]),
            "publish counts must strictly increase across records: {publishes:?}"
        );
        assert_eq!(*publishes.last().unwrap(), on.len() as u64);
        // Probes queued at epoch 2 drain at epoch 4: observed lag 2.
        let lag: u64 = record_field(on.last().unwrap(), "served_epoch_lag")
            .parse()
            .unwrap();
        assert_eq!(lag, 2, "expected eval-cadence staleness");
        validate_record(on.last().unwrap()).unwrap();
    }

    #[test]
    fn scale_free_cells_report_real_hit_rates() {
        // The read-time holdout gives scale-free cells a genuine test set:
        // HR@10 must be a real measurement, not the 0.0 placeholder the
        // no-holdout path reported.
        let cfg = tiny_scale_cfg(31);
        let cell = CellSpec {
            model: ModelKind::Mf,
            attack: AttackMethod::None,
            defense: DefenseKind::None,
            rho: 0.0,
        };
        let lines = run_cell(&cfg, &cell);
        let hr: f64 = record_field(lines.last().unwrap(), "hr10").parse().unwrap();
        assert!(hr > 0.0, "holdout produced no hit-rate signal: {hr}");
    }

    #[test]
    fn faulted_cells_report_counters_and_unfaulted_cells_report_zeros() {
        let clean_cfg = tiny_scale_cfg(37);
        let faulted_cfg = MatrixConfig {
            faults: Some(FaultPlan::smoke()),
            ..clean_cfg.clone()
        };
        let cell = CellSpec {
            model: ModelKind::Mf,
            attack: AttackMethod::Random,
            defense: DefenseKind::None,
            rho: 0.01,
        };
        let clean = run_cell(&clean_cfg, &cell);
        let faulted = run_cell(&faulted_cfg, &cell);
        let fault_sum = |line: &str| -> usize {
            [
                "f_dropped",
                "f_late",
                "f_rejected",
                "f_retried",
                "f_skipped",
            ]
            .iter()
            .map(|k| record_field(line, k).parse::<usize>().unwrap())
            .sum()
        };
        for line in &clean {
            validate_record(line).unwrap();
            assert_eq!(fault_sum(line), 0, "no-plan run must report zeros");
        }
        for line in &faulted {
            validate_record(line).unwrap();
        }
        // The counters are cumulative: the final record carries at least
        // as much as any mid-run record, and the smoke rates over a whole
        // cell fire with near-certainty.
        assert!(
            fault_sum(faulted.last().unwrap()) >= fault_sum(faulted.first().unwrap()),
            "fault counters must be cumulative"
        );
        assert!(
            fault_sum(faulted.last().unwrap()) > 0,
            "smoke fault rates fired nothing across the run"
        );
        // Faulted reruns stay byte-identical (modulo eval_ms).
        assert_eq!(vol(&faulted), vol(&run_cell(&faulted_cfg, &cell)));
    }

    /// The crash-resume acceptance gate at miniature scale: a faulted
    /// cell killed mid-run and resumed from its checkpoint produces
    /// byte-identical records and final item matrix to the uninterrupted
    /// run, at every client-round thread count.
    #[test]
    fn crash_resume_matches_straight_run_across_thread_counts() {
        let cfg = MatrixConfig {
            faults: Some(FaultPlan::smoke()),
            ..tiny_scale_cfg(41)
        };
        let cell = CellSpec {
            model: ModelKind::Mf,
            attack: AttackMethod::Random,
            defense: DefenseKind::TrimmedMean,
            rho: 0.01,
        };
        let (straight_lines, straight_digest) = run_cell_traced(&cfg, &cell, 1);
        // The plain sink path agrees with the traced one.
        assert_eq!(vol(&straight_lines), vol(&run_cell(&cfg, &cell)));
        for threads in [1usize, 2, 8] {
            let (lines, digest) = run_cell_resumed(&cfg, &cell, 2, threads);
            assert_eq!(
                vol(&lines),
                vol(&straight_lines),
                "resumed records diverged at {threads} threads"
            );
            assert_eq!(
                digest, straight_digest,
                "resumed item matrix diverged at {threads} threads"
            );
        }
    }

    /// The eval fast-path invariant at miniature scale: the same grid run
    /// under pruned and incremental evaluation is byte-identical to the
    /// full blocked sweep modulo the mode-dependent bookkeeping fields
    /// (`eval_mode`, `items_scored`, `items_skipped`) and `eval_ms`.
    #[test]
    fn eval_modes_are_byte_identical_to_full() {
        let full_cfg = tiny_scale_cfg(43);
        let full = run_matrix_collect(&full_cfg);
        for mode in [EvalMode::Pruned, EvalMode::Incremental] {
            for threads in [1usize, 2] {
                let cfg = MatrixConfig {
                    eval_mode: mode,
                    eval_threads: threads,
                    ..full_cfg.clone()
                };
                let got = run_matrix_collect(&cfg);
                assert_eq!(got.len(), full.len());
                for ((cell, g_lines), (_, f_lines)) in got.iter().zip(&full) {
                    assert_eq!(g_lines.len(), f_lines.len(), "cell {}", cell.id());
                    for (g, f) in g_lines.iter().zip(f_lines) {
                        assert_eq!(
                            mode_invariant(g),
                            mode_invariant(f),
                            "cell {} diverged under {} x{threads}",
                            cell.id(),
                            mode.label()
                        );
                        assert_eq!(record_field(g, "eval_mode"), mode.label());
                        validate_record(g).unwrap();
                    }
                }
            }
        }
        // Pruning must actually skip work somewhere, or the mode is a
        // no-op relabeling.
        let pruned = run_matrix_collect(&MatrixConfig {
            eval_mode: EvalMode::Pruned,
            ..full_cfg.clone()
        });
        let skipped: u64 = pruned
            .iter()
            .flat_map(|(_, lines)| lines.iter())
            .map(|l| record_field(l, "items_skipped").parse::<u64>().unwrap())
            .sum();
        assert!(skipped > 0, "pruned mode never skipped an item");
    }

    /// Dense populations always evaluate through the exact dense path:
    /// the mode knob applies only to scale-free streamed cells.
    #[test]
    fn dense_populations_always_record_full_mode() {
        let cfg = MatrixConfig {
            eval_mode: EvalMode::Pruned,
            ..tiny_cfg(47)
        };
        let cell = CellSpec {
            model: ModelKind::Mf,
            attack: AttackMethod::None,
            defense: DefenseKind::None,
            rho: 0.0,
        };
        for line in &run_cell(&cfg, &cell) {
            assert_eq!(record_field(line, "eval_mode"), "full");
            validate_record(line).unwrap();
        }
    }

    #[test]
    fn model_kind_parse_roundtrips() {
        for m in ModelKind::ALL {
            assert_eq!(ModelKind::parse(m.label()), Some(m), "{}", m.label());
        }
        assert_eq!(ModelKind::parse("garbage"), None);
    }

    /// MF ids keep their historical, unprefixed spelling (so every MF
    /// cell seed and output filename survives the model axis); NCF ids
    /// are prefixed and land on their own seeds.
    #[test]
    fn model_axis_ids_and_seeds() {
        let mf = CellSpec {
            model: ModelKind::Mf,
            attack: AttackMethod::FedRecAttack,
            defense: DefenseKind::Krum,
            rho: 0.05,
        };
        let ncf = CellSpec {
            model: ModelKind::Ncf,
            ..mf
        };
        assert_eq!(mf.id(), "fedrecattack_krum_rho0.05");
        assert_eq!(ncf.id(), "ncf_fedrecattack_krum_rho0.05");
        assert_ne!(mf.cell_seed(7), ncf.cell_seed(7));
    }

    /// A grid with both model families enumerates every MF cell first,
    /// in the historical order, then the NCF half.
    #[test]
    fn cells_enumerate_mf_before_ncf() {
        let cfg = MatrixConfig {
            ncf_attacks: vec![AttackMethod::None, AttackMethod::Random],
            ncf_defenses: vec![DefenseKind::None],
            ..tiny_cfg(3)
        };
        let cells = cfg.cells();
        assert_eq!(cells.len(), 8 + 4);
        assert!(cells[..8].iter().all(|c| c.model == ModelKind::Mf));
        assert!(cells[8..].iter().all(|c| c.model == ModelKind::Ncf));
        // The MF prefix is exactly the pure-MF enumeration.
        let mf_only = tiny_cfg(3).cells();
        assert_eq!(&cells[..8], &mf_only[..]);
    }

    #[test]
    fn smoke_grid_carries_an_ncf_arm() {
        let cfg = MatrixConfig::smoke(1);
        assert_eq!(cfg.ncf_attacks.len(), 3);
        assert_eq!(cfg.ncf_defenses.len(), 3);
        let cells = cfg.cells();
        let ncf = cells.iter().filter(|c| c.model == ModelKind::Ncf).count();
        assert_eq!(ncf, 3 * 3 * cfg.rhos.len());
    }

    #[test]
    fn model_projection_strips_the_model_field() {
        let line = "{\"cell\":\"x\",\"model\":\"mf\",\"eval_ms\":42,\"hr10\":0.5}";
        assert_eq!(model_invariant(line), "{\"cell\":\"x\",\"hr10\":0.5}");
        // Idempotent, and the NCF spelling strips identically.
        assert_eq!(
            model_invariant(&model_invariant(line)),
            model_invariant(line)
        );
    }

    /// The refactor gate: MF cells produce records byte-identical to the
    /// checked-in reference generated *before* the `ClientModel` seam and
    /// the model axis existed, modulo the volatile fields and the new
    /// `model` key. A byte of drift here means the seam changed MF
    /// training, evaluation, or serialization.
    #[test]
    fn mf_records_match_the_pre_model_axis_reference() {
        let reference = include_str!("../testdata/mf_tiny_reference.jsonl");
        let cfg = MatrixConfig {
            eval_every: 2,
            epochs: Some(4),
            ..MatrixConfig::at_scale(ScalePreset::Tiny, 42)
        };
        let cells = [
            (AttackMethod::FedRecAttack, DefenseKind::TrimmedMean, 0.01),
            (AttackMethod::Random, DefenseKind::None, 0.01),
            (AttackMethod::Popular, DefenseKind::DetectorGated, 0.01),
            (AttackMethod::None, DefenseKind::Krum, 0.0),
        ];
        let mut produced = Vec::new();
        for (attack, defense, rho) in cells {
            let cell = CellSpec {
                model: ModelKind::Mf,
                attack,
                defense,
                rho,
            };
            produced.extend(run_cell(&cfg, &cell));
        }
        let old: Vec<String> = reference.lines().map(volatile_invariant).collect();
        let new: Vec<String> = produced.iter().map(|l| model_invariant(l)).collect();
        assert_eq!(old.len(), new.len());
        for (o, n) in old.iter().zip(&new) {
            assert_eq!(o, n, "MF record drifted across the model-axis refactor");
        }
    }

    /// NCF grid cells at miniature scale: records validate, carry the
    /// `ncf` model field and `ncf_`-prefixed ids, always evaluate in
    /// `full` mode (even when the grid asks for pruned), never serve,
    /// and are byte-identical between the dense and sharded backends.
    #[test]
    fn ncf_cells_validate_and_are_backend_invariant() {
        let sharded_cfg = MatrixConfig {
            attacks: Vec::new(),
            defenses: Vec::new(),
            ncf_attacks: vec![AttackMethod::Random],
            ncf_defenses: vec![DefenseKind::None, DefenseKind::TrimmedMean],
            rhos: vec![0.0, 0.01],
            eval_mode: EvalMode::Pruned,
            serve: true,
            ..tiny_scale_cfg(53)
        };
        let dense_cfg = MatrixConfig {
            backend: StoreBackend::Dense,
            ..sharded_cfg.clone()
        };
        let sharded = run_matrix_collect(&sharded_cfg);
        let dense = run_matrix_collect(&dense_cfg);
        assert_eq!(sharded.len(), 4);
        for ((cell, s_lines), (_, d_lines)) in sharded.iter().zip(&dense) {
            assert_eq!(cell.model, ModelKind::Ncf);
            assert!(cell.id().starts_with("ncf_"), "{}", cell.id());
            assert_eq!(s_lines.len(), d_lines.len(), "cell {}", cell.id());
            for (s, d) in s_lines.iter().zip(d_lines) {
                validate_record(s).unwrap();
                assert_eq!(
                    backend_invariant(s),
                    backend_invariant(d),
                    "NCF cell {} diverged across backends",
                    cell.id()
                );
                assert_eq!(record_field(s, "model"), "ncf");
                assert_eq!(record_field(s, "eval_mode"), "full");
                assert_eq!(record_field(s, "serve_publishes"), "0");
            }
            // Standalone rerun byte-identity holds for NCF cells too.
            assert_eq!(vol(&run_cell(&sharded_cfg, cell)), vol(s_lines));
        }
        // NCF training learns something at this scale: the clean cell's
        // final HR@10 is a real measurement.
        let hr: f64 = record_field(sharded[0].1.last().unwrap(), "hr10")
            .parse()
            .unwrap();
        assert!(hr > 0.0, "NCF eval produced no hit-rate signal");
    }

    /// The crash-resume gate extended to NCF: a faulted NCF cell killed
    /// mid-run and restored through `Simulation::checkpoint/restore`
    /// (which round-trips the shared `Θ` block) matches the straight run
    /// byte-for-byte at every client-round thread count.
    #[test]
    fn ncf_crash_resume_matches_straight_run_across_thread_counts() {
        let cfg = MatrixConfig {
            faults: Some(FaultPlan::smoke()),
            ..tiny_scale_cfg(59)
        };
        let cell = CellSpec {
            model: ModelKind::Ncf,
            attack: AttackMethod::Random,
            defense: DefenseKind::TrimmedMean,
            rho: 0.01,
        };
        let (straight_lines, straight_digest) = run_cell_traced(&cfg, &cell, 1);
        assert_eq!(vol(&straight_lines), vol(&run_cell(&cfg, &cell)));
        for threads in [1usize, 2, 8] {
            let (lines, digest) = run_cell_resumed(&cfg, &cell, 2, threads);
            assert_eq!(
                vol(&lines),
                vol(&straight_lines),
                "resumed NCF records diverged at {threads} threads"
            );
            assert_eq!(
                digest, straight_digest,
                "resumed NCF item matrix diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn parse_record_handles_shapes() {
        let pairs = parse_record("{\"a\":\"x\",\"b\":1.5,\"c\":true}").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("a".to_string(), "x".to_string()),
                ("b".to_string(), "1.5".to_string()),
                ("c".to_string(), "true".to_string()),
            ]
        );
        assert!(parse_record("not json").is_none());
        assert!(parse_record("{\"a\":}").is_none());
    }
}

//! The paper's published numbers, embedded so every report can print
//! measured-vs-paper side by side (EXPERIMENTS.md is generated from
//! these).
//!
//! All values are transcribed from the tables of "FedRecAttack: Model
//! Poisoning Attack to Federated Recommendation" (ICDE 2022).

/// Table III — impact of ξ on ML-100K (ρ=5%, κ=60): `(ξ, ER@5, ER@10,
/// NDCG@10)`.
pub const TABLE3_XI: [(f64, f64, f64, f64); 5] = [
    (0.01, 0.9400, 0.9475, 0.9411),
    (0.02, 0.9818, 0.9893, 0.9789),
    (0.03, 0.9882, 0.9914, 0.9866),
    (0.05, 0.9936, 0.9946, 0.9886),
    (0.10, 0.9914, 0.9925, 0.9890),
];

/// Table IV — impact of ρ on ML-100K (ξ=1%): `(ρ, ER@5, ER@10, NDCG@10)`.
pub const TABLE4_RHO: [(f64, f64, f64, f64); 5] = [
    (0.01, 0.0011, 0.0011, 0.0011),
    (0.02, 0.0043, 0.0075, 0.0042),
    (0.03, 0.6902, 0.7395, 0.6615),
    (0.05, 0.9400, 0.9475, 0.9411),
    (0.10, 0.9475, 0.9518, 0.9423),
];

/// Table V — impact of κ on ML-100K: `(κ, ER@5, ER@10, NDCG@10)`.
pub const TABLE5_KAPPA: [(usize, f64, f64, f64); 5] = [
    (20, 0.9475, 0.9539, 0.9453),
    (40, 0.9464, 0.9518, 0.9442),
    (60, 0.9400, 0.9475, 0.9411),
    (80, 0.9507, 0.9593, 0.9480),
    (100, 0.9453, 0.9518, 0.9456),
];

/// Table VI — ER@10 on ML-100K vs data-poisoning attacks:
/// `(method, [ρ=0.5%, 1%, 3%, 5%])`.
pub const TABLE6_ER10: [(&str, [f64; 4]); 4] = [
    ("None", [0.0, 0.0, 0.0, 0.0]),
    ("P1", [0.0001, 0.0002, 0.0014, 0.0033]),
    ("P2", [0.0007, 0.0019, 0.0111, 0.0206]),
    ("FedRecAttack", [0.0000, 0.0011, 0.7449, 0.9475]),
];

/// One dataset block of Table VII: `(method, [(ER@5, ER@10, NDCG@10); ρ ∈
/// {3%, 5%, 10%}])`.
pub type Table7Block = [(&'static str, [(f64, f64, f64); 3]); 5];

/// Table VII — MovieLens-100K block.
pub const TABLE7_ML100K: Table7Block = [
    ("None", [(0.0, 0.0, 0.0), (0.0, 0.0, 0.0), (0.0, 0.0, 0.0)]),
    (
        "Random",
        [(0.0, 0.0, 0.0), (0.0, 0.0, 0.0), (0.0011, 0.0011, 0.0004)],
    ),
    (
        "Bandwagon",
        [
            (0.0011, 0.0011, 0.0011),
            (0.0, 0.0021, 0.0006),
            (0.0, 0.0, 0.0),
        ],
    ),
    (
        "Popular",
        [
            (0.0011, 0.0011, 0.0005),
            (0.0011, 0.0011, 0.0011),
            (0.0032, 0.0075, 0.0035),
        ],
    ),
    (
        "FedRecAttack",
        [
            (0.6988, 0.7449, 0.6702),
            (0.9400, 0.9475, 0.9411),
            (0.9507, 0.9528, 0.9455),
        ],
    ),
];

/// Table VII — MovieLens-1M block.
pub const TABLE7_ML1M: Table7Block = [
    ("None", [(0.0, 0.0, 0.0), (0.0, 0.0, 0.0), (0.0, 0.0, 0.0)]),
    (
        "Random",
        [
            (0.0, 0.0, 0.0),
            (0.0002, 0.0002, 0.0001),
            (0.0002, 0.0005, 0.0002),
        ],
    ),
    (
        "Bandwagon",
        [(0.0, 0.0, 0.0), (0.0, 0.0, 0.0), (0.0010, 0.0012, 0.0008)],
    ),
    (
        "Popular",
        [
            (0.0035, 0.0056, 0.0030),
            (0.0393, 0.0503, 0.0349),
            (0.1358, 0.1598, 0.1255),
        ],
    ),
    (
        "FedRecAttack",
        [
            (0.9722, 0.9752, 0.9684),
            (0.9659, 0.9704, 0.9610),
            (0.9689, 0.9742, 0.9646),
        ],
    ),
];

/// Table VII — Steam-200K block.
pub const TABLE7_STEAM: Table7Block = [
    ("None", [(0.0, 0.0, 0.0), (0.0, 0.0, 0.0), (0.0, 0.0, 0.0)]),
    (
        "Random",
        [
            (0.0027, 0.0037, 0.0022),
            (0.0024, 0.0029, 0.0025),
            (0.0029, 0.0032, 0.0027),
        ],
    ),
    (
        "Bandwagon",
        [
            (0.0133, 0.0157, 0.0121),
            (0.0702, 0.0952, 0.0669),
            (0.8829, 0.8944, 0.8774),
        ],
    ),
    (
        "Popular",
        [
            (0.2067, 0.3129, 0.1994),
            (0.7165, 0.7639, 0.6908),
            (0.8349, 0.8480, 0.8246),
        ],
    ),
    (
        "FedRecAttack",
        [
            (0.9843, 0.9848, 0.9833),
            (0.9835, 0.9848, 0.9831),
            (0.9864, 0.9869, 0.9852),
        ],
    ),
];

/// Table VIII — model-poisoning comparison on ML-1M:
/// `(method, [(HR@10, ER@5); ρ ∈ {10%, 20%, 30%, 40%}])`.
pub const TABLE8: [(&str, [(f64, f64); 4]); 6] = [
    (
        "None",
        [(0.5940, 0.0), (0.5940, 0.0), (0.5940, 0.0), (0.5940, 0.0)],
    ),
    (
        "P3",
        [
            (0.4434, 0.0),
            (0.4430, 0.0),
            (0.4435, 0.0154),
            (0.4454, 0.0298),
        ],
    ),
    (
        "P4",
        [
            (0.4392, 0.0),
            (0.4386, 0.9625),
            (0.4320, 0.9016),
            (0.4425, 1.0),
        ],
    ),
    (
        "EB",
        [
            (0.4432, 0.0),
            (0.4449, 1.0),
            (0.4363, 0.9998),
            (0.4432, 1.0),
        ],
    ),
    (
        "PipAttack",
        [
            (0.4384, 0.9513),
            (0.4412, 1.0),
            (0.4401, 1.0),
            (0.4349, 1.0),
        ],
    ),
    (
        "FedRecAttack",
        [
            (0.5901, 0.9689),
            (0.5800, 0.9735),
            (0.5829, 0.9733),
            (0.5800, 0.9786),
        ],
    ),
];

/// Table IX — ablation (ξ=1% vs ξ=0): `(dataset, ER@5, ER@10, NDCG@10)`
/// for ξ=1%; all ξ=0 entries are 0.0000.
pub const TABLE9_XI1: [(&str, f64, f64, f64); 3] = [
    ("MovieLens-100K", 0.9400, 0.9475, 0.9411),
    ("MovieLens-1M", 0.9659, 0.9704, 0.9610),
    ("Steam-200K", 0.9835, 0.9848, 0.9831),
];

/// Table II — dataset statistics: `(name, users, items, interactions,
/// avg, sparsity%)`.
pub const TABLE2: [(&str, usize, usize, usize, usize, f64); 3] = [
    ("MovieLens-100K", 943, 1_682, 100_000, 106, 93.70),
    ("MovieLens-1M", 6_040, 3_706, 1_000_209, 166, 95.53),
    ("Steam-200K", 3_753, 5_134, 114_713, 31, 99.40),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_have_expected_shapes() {
        assert_eq!(TABLE3_XI.len(), 5);
        assert_eq!(TABLE4_RHO.len(), 5);
        assert_eq!(TABLE5_KAPPA.len(), 5);
        assert_eq!(TABLE6_ER10.len(), 4);
        assert_eq!(TABLE8.len(), 6);
        assert_eq!(TABLE9_XI1.len(), 3);
    }

    #[test]
    fn headline_values_are_transcribed_correctly() {
        // Spot checks against the paper text.
        assert_eq!(TABLE4_RHO[3].1, 0.9400); // ρ=5% ER@5
        assert_eq!(TABLE6_ER10[3].1[3], 0.9475); // FedRecAttack ρ=5% ER@10
        assert_eq!(TABLE8[5].1[0].0, 0.5901); // FedRecAttack HR@10 at ρ=10%
        assert_eq!(TABLE7_STEAM[4].1[0].0, 0.9843);
    }

    #[test]
    fn all_metrics_are_probabilities() {
        for (_, a, b, c) in TABLE3_XI {
            for v in [a, b, c] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        for (_, vals) in TABLE8 {
            for (hr, er) in vals {
                assert!((0.0..=1.0).contains(&hr));
                assert!((0.0..=1.0).contains(&er));
            }
        }
    }
}

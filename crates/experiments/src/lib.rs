//! Experiment runners reproducing every table and figure of the paper.
//!
//! Each `table*` / `fig3` function regenerates one artifact of the
//! evaluation section (§V). Two scales are supported:
//!
//! * [`Scale::Smoke`] — miniature datasets and shorter training; seconds
//!   per table. Used by tests, benches and CI. The *shape* of the results
//!   (which attack wins, how effectiveness moves with ξ/ρ/κ) matches the
//!   paper; absolute numbers differ because the datasets are smaller.
//! * [`Scale::Paper`] — full Table II-sized synthetic datasets, `k = 32`,
//!   `η = 0.01`, 200 epochs, matching §V-A's protocol.
//!
//! Every runner returns a [`report::Table`] carrying measured values next
//! to the paper's published values, and `repro` (the CLI binary) renders
//! them as markdown/CSV.
//!
//! # Example
//!
//! ```
//! use fedrec_experiments::{table2_datasets, Scale};
//!
//! let table = table2_datasets(Scale::Smoke, 42);
//! assert!(table.to_markdown().contains("sparsity"));
//! ```

#![warn(missing_docs)]

pub mod detection;
pub mod fig3;
pub mod matrix;
pub mod paper_ref;
pub mod report;
pub mod runner;
pub mod scale;
pub mod scale_run;
pub mod serve_run;
pub mod tables;

pub use detection::extension_detection;
pub use fig3::fig3_side_effects;
pub use matrix::{
    backend_invariant, matrix_report, matrix_report_from, model_invariant, run_cell, run_matrix,
    run_matrix_collect, CellSpec, DefenseKind, MatrixConfig, ModelKind, Population, ScalePreset,
};
pub use report::Table;
pub use runner::{run_experiment, ExperimentSpec, Outcome};
pub use scale::{DatasetId, Scale};
pub use scale_run::{run_scale, scale_smoke, ScaleReport, ScaleSpec};
pub use serve_run::{run_serve, serve_smoke, ServeReport, ServeSpec};
pub use tables::{
    table2_datasets, table3_xi_sweep, table4_rho_sweep, table5_kappa_sweep, table6_data_poisoning,
    table7_effectiveness, table8_model_poisoning, table9_ablation,
};

//! Online serving throughput over live training snapshots.
//!
//! This is the end-to-end wiring of the serving layer ([`fedrec_serve`])
//! at the headline scale: a million lazily-derived user rows over a
//! 100k-item norm-skewed catalog, a closed-loop request driver, and a
//! rolling snapshot publisher standing in for a training loop that keeps
//! drifting `V`. Every request goes through the real production path —
//! bounded queue, 64-user batching through the blocked kernel over the
//! pruning order, drift-bound candidate caches — and the report carries
//! the numbers the serving layer is accountable for: sustained
//! requests/second, p50/p99 latency, cache hit rate, and epochs-behind.
//!
//! `repro serve` runs it from the CLI; `repro serve --smoke` is the CI
//! shrink that asserts the service invariants (every request answered,
//! caches actually hitting, serving never materializing a user row)
//! without holding CI to machine-dependent absolute numbers.

use fedrec_linalg::{Matrix, SeededGaussianInit, SeededRng, ShardedMatrix};
use fedrec_recsys::UserRowSource;
use fedrec_serve::{ServeConfig, Service, SERVE_BATCH};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Specification of one serving workload.
#[derive(Debug, Clone)]
pub struct ServeSpec {
    /// Population size `n` (rows derived lazily; serving must never
    /// materialize one).
    pub users: usize,
    /// Catalog size `m`.
    pub items: usize,
    /// Latent dimension `k`.
    pub k: usize,
    /// Ranked items per response.
    pub top_k: usize,
    /// Total requests to drive through the service.
    pub requests: usize,
    /// Serving worker threads.
    pub threads: usize,
    /// Size of the hot user set; 19 of 20 requests cycle through it (the
    /// cache-hit regime), every 20th hits a fresh cold-tail user.
    pub hot_users: usize,
    /// Publish a freshly drifted snapshot every this many submissions
    /// (0 = a single epoch-0 snapshot for the whole run).
    pub publish_every: usize,
    /// Master seed.
    pub seed: u64,
}

impl ServeSpec {
    /// The headline workload: a million users over a 100k-item catalog
    /// at k = 32, 300k requests with a snapshot publish every 50k.
    pub fn million() -> Self {
        Self {
            users: 1_000_000,
            items: 100_000,
            k: 32,
            top_k: 10,
            requests: 300_000,
            threads: 2,
            hot_users: 4_096,
            publish_every: 50_000,
            seed: 42,
        }
    }

    /// The CI-sized shrink: same shape, seconds end to end.
    pub fn smoke() -> Self {
        Self {
            users: 20_000,
            items: 2_000,
            k: 16,
            top_k: 10,
            requests: 30_000,
            threads: 2,
            hot_users: 1_024,
            publish_every: 10_000,
            seed: 42,
        }
    }
}

/// What a serving run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Population size `n`.
    pub users: usize,
    /// Catalog size `m`.
    pub items: usize,
    /// Latent dimension `k`.
    pub k: usize,
    /// Requests driven (and answered — asserted equal).
    pub requests: usize,
    /// Serving worker threads.
    pub threads: usize,
    /// Snapshots published over the run.
    pub publishes: u64,
    /// Sustained requests per second over the serving phase.
    pub req_per_sec: f64,
    /// Median end-to-end latency (submit → reply), microseconds; bucket
    /// upper bound of a log₂ histogram.
    pub p50_us: f64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_us: f64,
    /// Fraction of requests served from a still-valid candidate cache.
    pub hit_rate: f64,
    /// Mean epochs-behind across responses.
    pub mean_epoch_lag: f64,
    /// Worst epochs-behind on any single response.
    pub max_epoch_lag: u64,
    /// Seconds building the catalog, population and service.
    pub build_secs: f64,
    /// Seconds in the serving phase.
    pub serve_secs: f64,
}

impl ServeReport {
    /// Render as a JSON object (hand-rolled; no serde in this workspace).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"users\": {},\n",
                "  \"items\": {},\n",
                "  \"k\": {},\n",
                "  \"requests\": {},\n",
                "  \"threads\": {},\n",
                "  \"publishes\": {},\n",
                "  \"req_per_sec\": {:.0},\n",
                "  \"p50_us\": {:.1},\n",
                "  \"p99_us\": {:.1},\n",
                "  \"hit_rate\": {:.4},\n",
                "  \"mean_epoch_lag\": {:.4},\n",
                "  \"max_epoch_lag\": {},\n",
                "  \"build_secs\": {:.3},\n",
                "  \"serve_secs\": {:.3}\n",
                "}}"
            ),
            self.users,
            self.items,
            self.k,
            self.requests,
            self.threads,
            self.publishes,
            self.req_per_sec,
            self.p50_us,
            self.p99_us,
            self.hit_rate,
            self.mean_epoch_lag,
            self.max_epoch_lag,
            self.build_secs,
            self.serve_secs,
        )
    }
}

/// The user a given submission targets: 19 of 20 cycle the hot set,
/// every 20th walks the cold tail (a user the service has never seen,
/// whose row the sharded store derives without materializing).
fn user_for(submission: usize, hot: usize, users: usize) -> u32 {
    if users > hot && submission % 20 == 19 {
        (hot + (submission / 20) % (users - hot)) as u32
    } else {
        (submission % hot) as u32
    }
}

/// A small deterministic per-user exclusion list (stride-sampled ids),
/// standing in for the requester's already-interacted items.
fn exclusions_for(user: u32, items: usize) -> Vec<u32> {
    ((user as usize % 97)..items)
        .step_by(9_973)
        .map(|i| i as u32)
        .collect()
}

/// Run one serving workload.
///
/// Drives `spec.requests` through a live [`Service`] in a closed loop of
/// lock-step bursts: submit one batch-quantum of requests, then wait for
/// all of its replies before submitting the next. The burst IS the
/// coalescing the batch queue is built for, queue wait stays bounded at
/// one quantum, and at most one thread is runnable at a time — so the
/// latency histogram measures the service, not scheduler contention on
/// small machines. Publishes a drifted snapshot every `publish_every`
/// submissions. Asserts every request is answered and that serving never
/// materialized a user row.
pub fn run_serve(spec: &ServeSpec) -> ServeReport {
    assert!(spec.hot_users > 0 && spec.hot_users <= spec.users);
    // fedrec-lint: allow(wall-clock) — build/serve wall-times and latency quantiles are the bench payload of the serve report; ranked bytes stay clock-free
    let t0 = Instant::now();
    let mut rng = SeededRng::new(spec.seed ^ 0x5E21);
    let mut items = Matrix::random_normal(spec.items, spec.k, 0.0, 0.1, &mut rng);
    // Trained-model norm profile: popular items accumulate updates and
    // grow long factor vectors, which is what lets the pruning order
    // stop miss sweeps after a short high-norm prefix.
    for i in 0..spec.items {
        let scale = ((i + 1) as f32).powf(-0.5);
        for x in &mut items.as_mut_slice()[i * spec.k..(i + 1) * spec.k] {
            *x *= scale;
        }
    }
    let mut parent = SeededRng::new(spec.seed ^ 0xC01D);
    let init = SeededGaussianInit::record(&mut parent, spec.users, 64, 0.0, 0.1);
    let users = Arc::new(ShardedMatrix::new(
        spec.users,
        spec.k,
        4_096,
        Box::new(init),
    ));
    let svc = Arc::new(Service::new(ServeConfig {
        k: spec.top_k,
        queue_cap: 4_096,
        batch: SERVE_BATCH,
    }));
    svc.publish(0, &items);
    let handles = svc.start_workers(
        Arc::clone(&users) as Arc<dyn UserRowSource + Send + Sync>,
        spec.threads,
    );
    let build_secs = t0.elapsed().as_secs_f64();

    // Cache warmup: serve every hot user once so the timed phase
    // measures the steady state (hot caches filled, cold-tail misses
    // still arriving at their real 1-in-20 rate), then zero the
    // measurement counters. Without this the first hot_users requests
    // are all first-touch misses and dominate the tail quantiles.
    let (tx, rx) = mpsc::channel();
    let quantum = svc.config().batch.max(1);
    let mut warmed = 0usize;
    while warmed < spec.hot_users {
        let burst = quantum.min(spec.hot_users - warmed);
        for _ in 0..burst {
            let user = warmed as u32;
            assert!(
                svc.submit(user, exclusions_for(user, spec.items), tx.clone()),
                "serve queue closed during warmup"
            );
            warmed += 1;
        }
        for _ in 0..burst {
            rx.recv().expect("service dropped a warmup reply");
        }
    }
    svc.stats().reset_measurements();

    // fedrec-lint: allow(wall-clock) — same reporting-only timing as t0 above
    let t1 = Instant::now();
    let mut submitted = 0usize;
    let mut received = 0usize;
    let mut epoch = 0u64;
    while received < spec.requests {
        let burst = quantum.min(spec.requests - submitted);
        for _ in 0..burst {
            if spec.publish_every > 0
                && submitted > 0
                && submitted.is_multiple_of(spec.publish_every)
            {
                // Stand-in for one training round: a small uniform drift
                // that preserves the ranking, so drift-bound caches keep
                // proving themselves valid across the publish.
                epoch += 1;
                for x in items.as_mut_slice() {
                    *x *= 1.001;
                }
                svc.publish(epoch, &items);
            }
            let user = user_for(submitted, spec.hot_users, spec.users);
            assert!(
                svc.submit(user, exclusions_for(user, spec.items), tx.clone()),
                "serve queue closed mid-run"
            );
            submitted += 1;
        }
        for _ in 0..burst {
            let resp = rx.recv().expect("service dropped a reply");
            assert!(
                resp.top.len() <= spec.top_k,
                "response overflowed top_k: {}",
                resp.top.len()
            );
            received += 1;
        }
    }
    let serve_secs = t1.elapsed().as_secs_f64();
    svc.close();
    for h in handles {
        h.join().expect("serving worker panicked");
    }

    let stats = svc.stats();
    let answered = stats.requests.load(Ordering::Relaxed);
    assert_eq!(answered, spec.requests as u64, "request count mismatch");
    assert_eq!(
        users.materialized_rows(),
        0,
        "serving materialized user rows"
    );
    let us = |q: f64| -> f64 { stats.latency.quantile_ns(q).unwrap_or(0) as f64 / 1_000.0 };
    ServeReport {
        users: spec.users,
        items: spec.items,
        k: spec.k,
        requests: spec.requests,
        threads: spec.threads,
        publishes: svc.publish_count(),
        req_per_sec: spec.requests as f64 / serve_secs.max(1e-9),
        p50_us: us(0.5),
        p99_us: us(0.99),
        hit_rate: stats.hit_rate(),
        mean_epoch_lag: stats.mean_epoch_lag(),
        max_epoch_lag: stats.epoch_lag_max.load(Ordering::Relaxed),
        build_secs,
        serve_secs,
    }
}

/// The `repro serve --smoke` CI gate.
///
/// Runs the CI shrink and asserts the service-shape invariants that hold
/// on any machine: every request answered (checked inside [`run_serve`]),
/// zero user rows materialized by serving (ditto), the expected number of
/// snapshot publishes, and a cache hit rate that proves the drift-bound
/// reuse path is actually engaging under a drifting publisher. Absolute
/// throughput and latency are reported, not gated — they belong to
/// `BENCH_serve.json`, not CI.
pub fn serve_smoke() -> Result<String, String> {
    let spec = ServeSpec::smoke();
    let r = run_serve(&spec);
    let expected_publishes = 1 + (spec.requests - 1) as u64 / spec.publish_every as u64;
    if r.publishes != expected_publishes {
        return Err(format!(
            "expected {expected_publishes} snapshot publishes, saw {}",
            r.publishes
        ));
    }
    if r.hit_rate < 0.5 {
        return Err(format!(
            "cache hit rate {:.3} too low: the drift-bound reuse path is not engaging \
             (hot set of {} users cycled {} times under a ranking-preserving publisher)",
            r.hit_rate,
            spec.hot_users,
            spec.requests / spec.hot_users.max(1)
        ));
    }
    if r.max_epoch_lag > r.publishes {
        return Err(format!(
            "impossible epoch lag {} with {} publishes",
            r.max_epoch_lag, r.publishes
        ));
    }
    Ok(format!(
        "serve smoke OK: {} requests over {} users / {} items answered at {:.0} req/s \
         ({} threads), p50 {:.1} us, p99 {:.1} us, hit rate {:.3}, {} publishes, \
         max epoch lag {}, zero user rows materialized",
        r.requests,
        r.users,
        r.items,
        r.req_per_sec,
        r.threads,
        r.p50_us,
        r.p99_us,
        r.hit_rate,
        r.publishes,
        r.max_epoch_lag,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ServeSpec {
        ServeSpec {
            users: 2_000,
            items: 400,
            k: 8,
            top_k: 10,
            requests: 2_000,
            threads: 2,
            hot_users: 128,
            publish_every: 700,
            seed: 11,
        }
    }

    #[test]
    fn tiny_serve_run_reports_hits_publishes_and_stays_cold() {
        let r = run_serve(&tiny_spec());
        assert_eq!(r.requests, 2_000);
        assert_eq!(r.publishes, 3, "publishes at submissions 700 and 1400");
        assert!(r.hit_rate > 0.3, "hit rate {:.3}", r.hit_rate);
        assert!(r.req_per_sec > 0.0 && r.serve_secs > 0.0);
        let json = r.to_json();
        assert!(json.contains("\"req_per_sec\""));
        assert!(json.contains("\"hit_rate\""));
    }

    #[test]
    fn request_mix_walks_hot_set_and_cold_tail() {
        let hot = 128usize;
        let users = 2_000usize;
        let mut cold_seen = std::collections::BTreeSet::new();
        for s in 0..2_000 {
            let u = user_for(s, hot, users) as usize;
            if s % 20 == 19 {
                assert!(u >= hot, "submission {s} should be cold");
                cold_seen.insert(u);
            } else {
                assert!(u < hot, "submission {s} should be hot");
            }
        }
        assert_eq!(cold_seen.len(), 100, "cold users never repeat in-range");
    }
}

//! Experiment scales and dataset selection.

use fedrec_data::synthetic::SyntheticConfig;
use fedrec_data::{loader, Dataset};
use fedrec_federated::FedConfig;
use std::path::Path;

/// The three datasets of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// MovieLens-100K.
    Ml100k,
    /// MovieLens-1M.
    Ml1m,
    /// Steam-200K.
    Steam200k,
}

impl DatasetId {
    /// All three, in the paper's order.
    pub const ALL: [DatasetId; 3] = [DatasetId::Ml100k, DatasetId::Ml1m, DatasetId::Steam200k];

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetId::Ml100k => "MovieLens-100K",
            DatasetId::Ml1m => "MovieLens-1M",
            DatasetId::Steam200k => "Steam-200K",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "ml100k" | "ml-100k" | "movielens-100k" => DatasetId::Ml100k,
            "ml1m" | "ml-1m" | "movielens-1m" => DatasetId::Ml1m,
            "steam" | "steam200k" | "steam-200k" => DatasetId::Steam200k,
            _ => return None,
        })
    }
}

/// How big an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Miniature datasets, short training (tests/benches/CI).
    Smoke,
    /// Full Table II sizes and the paper's §V-A hyper-parameters.
    Paper,
}

impl Scale {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "smoke" => Scale::Smoke,
            "paper" | "full" => Scale::Paper,
            _ => return None,
        })
    }

    /// Federated training configuration at this scale.
    pub fn fed_config(&self, seed: u64) -> FedConfig {
        match self {
            Scale::Smoke => FedConfig {
                k: 16,
                lr: 0.05,
                epochs: 60,
                seed,
                ..FedConfig::default()
            },
            Scale::Paper => FedConfig {
                k: 32,
                lr: 0.01,
                epochs: 200,
                seed,
                ..FedConfig::default()
            },
        }
    }

    /// The synthetic stand-in for a dataset at this scale. At smoke scale
    /// the three miniatures preserve the paper's *density ordering*
    /// (ML-1M densest, Steam sparsest), which drives the cross-dataset
    /// trend in Table VII.
    pub fn synthetic(&self, id: DatasetId) -> SyntheticConfig {
        match (self, id) {
            (Scale::Smoke, DatasetId::Ml100k) => SyntheticConfig::smoke(),
            (Scale::Smoke, DatasetId::Ml1m) => SyntheticConfig::smoke_dense(),
            (Scale::Smoke, DatasetId::Steam200k) => SyntheticConfig::smoke_sparse(),
            (Scale::Paper, DatasetId::Ml100k) => SyntheticConfig::ml100k(),
            (Scale::Paper, DatasetId::Ml1m) => SyntheticConfig::ml1m(),
            (Scale::Paper, DatasetId::Steam200k) => SyntheticConfig::steam200k(),
        }
    }

    /// Materialize a dataset: from the real files when `data_dir` is given
    /// (expects `u.data`, `ratings.dat`, `steam-200k.csv` inside),
    /// otherwise from the synthetic generator.
    pub fn dataset(&self, id: DatasetId, data_dir: Option<&Path>, seed: u64) -> Dataset {
        if let Some(dir) = data_dir {
            let result = match id {
                DatasetId::Ml100k => loader::load_movielens_100k(&dir.join("u.data")),
                DatasetId::Ml1m => loader::load_movielens_1m(&dir.join("ratings.dat")),
                DatasetId::Steam200k => loader::load_steam_200k(&dir.join("steam-200k.csv")),
            };
            match result {
                Ok(d) => return d,
                Err(e) => {
                    eprintln!(
                        "warning: failed to load {} from {}: {e}; falling back to synthetic",
                        id.label(),
                        dir.display()
                    );
                }
            }
        }
        self.synthetic(id).generate(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips() {
        assert_eq!(DatasetId::parse("ml-100k"), Some(DatasetId::Ml100k));
        assert_eq!(DatasetId::parse("steam"), Some(DatasetId::Steam200k));
        assert_eq!(DatasetId::parse("nope"), None);
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_matches_section_5a() {
        let cfg = Scale::Paper.fed_config(1);
        assert_eq!(cfg.k, 32);
        assert_eq!(cfg.epochs, 200);
        assert!((cfg.lr - 0.01).abs() < 1e-9);
    }

    #[test]
    fn smoke_density_ordering_matches_paper() {
        let density = |c: &SyntheticConfig| {
            c.num_interactions as f64 / (c.num_users as f64 * c.num_items as f64)
        };
        let ml100k = density(&Scale::Smoke.synthetic(DatasetId::Ml100k));
        let ml1m = density(&Scale::Smoke.synthetic(DatasetId::Ml1m));
        let steam = density(&Scale::Smoke.synthetic(DatasetId::Steam200k));
        assert!(ml1m > ml100k, "ML-1M must stay densest");
        assert!(ml100k > steam, "Steam must stay sparsest");
    }

    #[test]
    fn missing_data_dir_falls_back_to_synthetic() {
        let d = Scale::Smoke.dataset(DatasetId::Ml100k, Some(Path::new("/nonexistent")), 3);
        assert_eq!(d.num_users(), SyntheticConfig::smoke().num_users);
    }
}

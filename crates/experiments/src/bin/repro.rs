//! `repro` — regenerate any table or figure of the paper, or run the
//! defended attack×defense×ρ scenario matrix.
//!
//! ```text
//! repro <experiment> [--scale smoke|paper] [--seed N] [--dataset ml100k|ml1m|steam]
//!       [--eval-every N] [--csv] [--out FILE]
//!
//! experiments: table2 table3 table4 table5 table6 table7 table8 table9
//!              fig3 defenses detection all
//!
//! repro matrix [--attacks a,b,..|all] [--defenses d,e,..|all] [--rhos r1,r2,..]
//!       [--population million|smoke50k|tiny|ml100k|ml1m|steam]
//!       [--backend dense|sharded] [--shard-rows N] [--eval-users N]
//!       [--eval-mode full|pruned|incremental] [--eval-threads N]
//!       [--out-dir DIR] [--workers N] [--epochs N] [--scale ...] [--seed N]
//!       [--dataset ...] [--eval-every N] [--smoke]
//! repro cell --attack A --defense D --rho R [--model mf|ncf] [--epochs N]
//!       [--scale ...] [--seed N] [--dataset ...] [--population ...]
//!       [--eval-every N] [--eval-mode full|pruned|incremental]
//!       [--eval-threads N] [--out FILE]
//! repro report --dir DIR [--csv] [--out FILE]
//! repro scale [--smoke] [--users N] [--items N] [--epochs N] [--fraction F]
//!       [--workers N] [--eval-users N] [--backend dense|sharded]
//!       [--shard-rows N] [--seed N] [--out FILE]
//! repro serve [--users N] [--items N] [--requests N] [--threads N]
//!       [--publish-every N] [--k N] [--seed N] [--smoke] [--out FILE]
//! repro lint [--json] [--write-baseline] [--rules] [--root DIR] [--baseline FILE]
//! ```
//!
//! `--scale smoke` (default) runs in seconds on miniature datasets;
//! `--scale paper` reproduces the full §V-A protocol (much slower).
//! `matrix --population million` runs the grid on a 1M-user scale-free
//! population through the sharded client store (malicious users
//! materialize as rows of the adversary's shard store on first
//! participation; ~500 participants per round). `matrix --smoke` runs
//! the {MF, NCF} × attack × defense grid on the 50k-user scale-free
//! preset (the NCF half over a representative attack/defense subset),
//! checks
//! every record's schema, asserts the lazy-store invariant
//! (`rows_materialized ≤ participants_touched`), reruns the grid on the
//! dense backend to assert dense-vs-sharded byte-identity, reruns one
//! cell standalone to assert byte-identical output, and reruns a probe
//! cell under `--eval-mode pruned` and `incremental` to assert the eval
//! fast paths reproduce the full sweep's records byte-identically
//! (modulo the mode bookkeeping fields) — the CI determinism gate.
//!
//! `--eval-mode` selects the streamed-evaluation strategy for scale-free
//! populations: `full` (blocked exact sweep, default), `pruned`
//! (norm-bound top-K pruning) or `incremental` (cross-epoch candidate
//! caching with drift bounds). All three produce byte-identical metrics;
//! only `eval_mode`/`items_scored`/`items_skipped` differ in the records.
//!
//! `scale` runs a scale-free population through the sharded client store
//! (defaults: 1M users / 100k items, ~500 participants per round).
//! `scale --smoke` is the 50k-user CI gate: it asserts the lazy store
//! materialized no more client rows than participants were touched, and
//! that dense and sharded backends are byte-identical across thread
//! counts.
//!
//! `serve` drives the online top-K serving layer (`fedrec-serve`) in a
//! closed loop at the million-user preset — 300k requests over 1M lazy
//! users / 100k items with a snapshot publish every 50k — and reports
//! req/s, p50/p99 latency, cache hit rate and epochs-behind as JSON
//! (the `BENCH_serve.json` generator). `serve --smoke` is the CI-sized
//! shrink that gates the machine-independent invariants (every request
//! answered, caches engaging, zero user rows materialized by serving).
//!
//! `lint` runs the `fedrec-lint` determinism & checkpoint-safety static
//! pass over the workspace sources (same engine as
//! `cargo run -p fedrec-lint`) and exits nonzero on any violation that is
//! neither suppressed in-source with a justification nor absorbed by the
//! checked-in `lint-baseline.json`.

use fedrec_baselines::registry::AttackMethod;
use fedrec_experiments::matrix::{
    self, matrix_report, matrix_report_from, run_cell_into, run_matrix, CellSpec, DefenseKind,
    MatrixConfig, ModelKind, Population,
};
use fedrec_experiments::{
    fig3_side_effects, run_scale, run_serve, scale_smoke, serve_smoke, table2_datasets,
    table3_xi_sweep, table4_rho_sweep, table5_kappa_sweep, table6_data_poisoning,
    table7_effectiveness, table8_model_poisoning, table9_ablation, DatasetId, Scale, ScaleSpec,
    ServeSpec, Table,
};
use fedrec_federated::StoreBackend;
use fedrec_recsys::EvalMode;
use std::io::Write;
use std::path::PathBuf;

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
    dataset: DatasetId,
    eval_every: Option<usize>,
    csv: bool,
    out: Option<String>,
    // matrix / cell / report options
    attacks: Option<Vec<AttackMethod>>,
    defenses: Option<Vec<DefenseKind>>,
    rhos: Option<Vec<f64>>,
    population: Option<Population>,
    attack: Option<AttackMethod>,
    defense: Option<DefenseKind>,
    rho: Option<f64>,
    model: Option<ModelKind>,
    epochs: Option<usize>,
    workers: Option<usize>,
    out_dir: Option<PathBuf>,
    dir: Option<PathBuf>,
    smoke: bool,
    // scale options
    users: Option<usize>,
    items: Option<usize>,
    fraction: Option<f64>,
    eval_users: Option<usize>,
    backend_dense: Option<bool>,
    shard_rows: Option<usize>,
    eval_mode: Option<EvalMode>,
    eval_threads: Option<usize>,
    serve: bool,
    // serve options
    requests: Option<usize>,
    threads: Option<usize>,
    publish_every: Option<usize>,
    k: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <table2|table3|table4|table5|table6|table7|table8|table9|fig3|defenses|detection|all>\n\
         \x20      [--scale smoke|paper] [--seed N] [--dataset ml100k|ml1m|steam]\n\
         \x20      [--eval-every N] [--csv] [--out FILE]\n\
         \x20 repro matrix [--attacks a,b|all] [--defenses d,e|all] [--rhos r1,r2]\n\
         \x20      [--population million|smoke50k|tiny|ml100k|ml1m|steam]\n\
         \x20      [--backend dense|sharded] [--shard-rows N] [--eval-users N]\n\
         \x20      [--eval-mode full|pruned|incremental] [--eval-threads N]\n\
         \x20      [--out-dir DIR] [--workers N] [--epochs N] [--smoke] [--serve]\n\
         \x20      [--model mf|ncf] [shared flags]\n\
         \x20 repro cell --attack A --defense D --rho R [--model mf|ncf]\n\
         \x20      [--out FILE] [shared flags]\n\
         \x20 repro report --dir DIR [--csv] [--out FILE]\n\
         \x20 repro scale [--smoke] [--users N] [--items N] [--epochs N] [--fraction F]\n\
         \x20      [--workers N] [--eval-users N] [--backend dense|sharded]\n\
         \x20      [--shard-rows N] [--seed N] [--out FILE]\n\
         \x20 repro serve [--users N] [--items N] [--requests N] [--threads N]\n\
         \x20      [--publish-every N] [--k N] [--seed N] [--smoke] [--out FILE]\n\
         \x20 repro lint [--json] [--write-baseline] [--rules] [--root DIR] [--baseline FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        scale: Scale::Smoke,
        seed: 42,
        dataset: DatasetId::Ml100k,
        eval_every: None,
        csv: false,
        out: None,
        attacks: None,
        defenses: None,
        rhos: None,
        population: None,
        attack: None,
        defense: None,
        rho: None,
        model: None,
        epochs: None,
        workers: None,
        out_dir: None,
        dir: None,
        smoke: false,
        users: None,
        items: None,
        fraction: None,
        eval_users: None,
        backend_dense: None,
        shard_rows: None,
        eval_mode: None,
        eval_threads: None,
        serve: false,
        requests: None,
        threads: None,
        publish_every: None,
        k: None,
    };
    // fedrec-lint: allow(wall-clock) — CLI entry point: argv selects the experiment, it never feeds simulation state
    let mut it = std::env::args().skip(1);
    match it.next() {
        Some(e) => args.experiment = e,
        None => usage(),
    }
    while let Some(flag) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scale" => args.scale = Scale::parse(&next()).unwrap_or_else(|| usage()),
            "--seed" => args.seed = next().parse().unwrap_or_else(|_| usage()),
            "--dataset" => args.dataset = DatasetId::parse(&next()).unwrap_or_else(|| usage()),
            "--eval-every" => args.eval_every = Some(next().parse().unwrap_or_else(|_| usage())),
            "--csv" => args.csv = true,
            "--out" => args.out = Some(next()),
            "--attacks" => args.attacks = Some(parse_attacks(&next())),
            "--defenses" => args.defenses = Some(parse_defenses(&next())),
            "--rhos" => args.rhos = Some(parse_rhos(&next())),
            "--population" => {
                args.population = Some(Population::parse(&next()).unwrap_or_else(|| usage()))
            }
            "--attack" => {
                args.attack = Some(AttackMethod::parse(&next()).unwrap_or_else(|| usage()))
            }
            "--defense" => {
                args.defense = Some(DefenseKind::parse(&next()).unwrap_or_else(|| usage()))
            }
            "--rho" => args.rho = Some(next().parse().unwrap_or_else(|_| usage())),
            "--model" => args.model = Some(ModelKind::parse(&next()).unwrap_or_else(|| usage())),
            "--epochs" => args.epochs = Some(next().parse().unwrap_or_else(|_| usage())),
            "--workers" => args.workers = Some(next().parse().unwrap_or_else(|_| usage())),
            "--out-dir" => args.out_dir = Some(PathBuf::from(next())),
            "--dir" => args.dir = Some(PathBuf::from(next())),
            "--smoke" => args.smoke = true,
            "--users" => args.users = Some(next().parse().unwrap_or_else(|_| usage())),
            "--items" => args.items = Some(next().parse().unwrap_or_else(|_| usage())),
            "--fraction" => args.fraction = Some(next().parse().unwrap_or_else(|_| usage())),
            "--eval-users" => args.eval_users = Some(next().parse().unwrap_or_else(|_| usage())),
            "--backend" => match next().to_ascii_lowercase().as_str() {
                "dense" => args.backend_dense = Some(true),
                "sharded" => args.backend_dense = Some(false),
                _ => usage(),
            },
            "--shard-rows" => {
                let v: usize = next().parse().unwrap_or_else(|_| usage());
                if v == 0 {
                    usage()
                }
                args.shard_rows = Some(v);
            }
            "--eval-mode" => {
                args.eval_mode = Some(EvalMode::parse(&next()).unwrap_or_else(|| usage()))
            }
            "--eval-threads" => {
                let v: usize = next().parse().unwrap_or_else(|_| usage());
                if v == 0 {
                    usage()
                }
                args.eval_threads = Some(v);
            }
            "--serve" => args.serve = true,
            "--requests" => args.requests = Some(next().parse().unwrap_or_else(|_| usage())),
            "--threads" => {
                let v: usize = next().parse().unwrap_or_else(|_| usage());
                if v == 0 {
                    usage()
                }
                args.threads = Some(v);
            }
            "--publish-every" => {
                args.publish_every = Some(next().parse().unwrap_or_else(|_| usage()))
            }
            "--k" => {
                let v: usize = next().parse().unwrap_or_else(|_| usage());
                if v == 0 {
                    usage()
                }
                args.k = Some(v);
            }
            _ => usage(),
        }
    }
    args
}

fn parse_attacks(s: &str) -> Vec<AttackMethod> {
    if s.eq_ignore_ascii_case("all") {
        return AttackMethod::ALL.to_vec();
    }
    s.split(',')
        .map(|a| AttackMethod::parse(a.trim()).unwrap_or_else(|| usage()))
        .collect()
}

fn parse_defenses(s: &str) -> Vec<DefenseKind> {
    if s.eq_ignore_ascii_case("all") {
        return DefenseKind::ALL.to_vec();
    }
    s.split(',')
        .map(|d| DefenseKind::parse(d.trim()).unwrap_or_else(|| usage()))
        .collect()
}

fn parse_rhos(s: &str) -> Vec<f64> {
    s.split(',')
        .map(|r| r.trim().parse().unwrap_or_else(|_| usage()))
        .collect()
}

fn matrix_config(args: &Args) -> MatrixConfig {
    let mut cfg = if args.smoke {
        MatrixConfig::smoke(args.seed)
    } else {
        match args.population {
            // `--population million|smoke50k|tiny` turns on the tuned
            // scale-free defaults (sharded store, tiny-ρ arms, streamed
            // partial-population eval).
            Some(Population::ScaleFree(preset)) => MatrixConfig::at_scale(preset, args.seed),
            Some(pop @ Population::Dense(_)) => MatrixConfig {
                population: pop,
                ..MatrixConfig::new(args.scale, args.seed)
            },
            None => MatrixConfig {
                population: Population::Dense(args.dataset),
                ..MatrixConfig::new(args.scale, args.seed)
            },
        }
    };
    if let (false, Some(every)) = (args.smoke, args.eval_every) {
        // Only an explicit --eval-every overrides the preset's cadence:
        // scale-free defaults record the final epoch only, and clobbering
        // that with the dense default would add a mid-training streamed
        // evaluation to every million-user cell.
        cfg.eval_every = every;
    }
    match (args.backend_dense, args.shard_rows) {
        (Some(true), _) => cfg.backend = fedrec_federated::StoreBackend::Dense,
        (Some(false), None) => cfg.backend = fedrec_federated::StoreBackend::sharded(),
        (_, Some(rows)) => {
            cfg.backend = fedrec_federated::StoreBackend::Sharded { shard_rows: rows }
        }
        (None, None) => {}
    }
    if let Some(e) = args.eval_users {
        cfg.eval_users = e;
    }
    if let Some(a) = &args.attacks {
        cfg.attacks = a.clone();
    }
    if let Some(d) = &args.defenses {
        cfg.defenses = d.clone();
    }
    if let Some(r) = &args.rhos {
        cfg.rhos = r.clone();
    }
    if let Some(e) = args.epochs {
        cfg.epochs = Some(e);
    }
    if let Some(w) = args.workers {
        cfg.workers = w.max(1);
    }
    if let Some(m) = args.eval_mode {
        cfg.eval_mode = m;
    }
    if let Some(t) = args.eval_threads {
        cfg.eval_threads = t;
    }
    if args.serve {
        cfg.serve = true;
    }
    // `--model` restricts the grid to one family: `ncf` moves the (possibly
    // flag-overridden) attack/defense arms onto the NCF half, `mf` drops
    // any preset NCF arms (e.g. the smoke grid's).
    match args.model {
        Some(ModelKind::Ncf) => {
            cfg.ncf_attacks = std::mem::take(&mut cfg.attacks);
            cfg.ncf_defenses = std::mem::take(&mut cfg.defenses);
        }
        Some(ModelKind::Mf) => {
            cfg.ncf_attacks.clear();
            cfg.ncf_defenses.clear();
        }
        None => {}
    }
    cfg
}

fn fail(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(1);
}

fn cmd_matrix(args: &Args) {
    let cfg = matrix_config(args);
    let out_dir = args.out_dir.clone().unwrap_or_else(|| {
        PathBuf::from(if args.smoke {
            "target/matrix-smoke"
        } else {
            "matrix-out"
        })
    });
    if args.smoke {
        let _ = std::fs::remove_dir_all(&out_dir);
    }
    // fedrec-lint: allow(wall-clock) — progress timing on stderr only; record bytes never include it
    let started = std::time::Instant::now();
    let outcomes =
        run_matrix(&cfg, &out_dir).unwrap_or_else(|e| fail(&format!("matrix run failed: {e}")));
    let records: usize = outcomes.iter().map(|o| o.records).sum();
    eprintln!(
        "ran {} cells ({} records) into {} with {} workers in {:.1}s",
        outcomes.len(),
        records,
        out_dir.display(),
        cfg.workers,
        started.elapsed().as_secs_f64()
    );
    if args.smoke {
        smoke_checks(&cfg, &outcomes);
    } else {
        // Report over exactly the cells this run wrote — the directory
        // may hold files from earlier runs with other grids.
        let paths: Vec<std::path::PathBuf> = outcomes.iter().map(|o| o.path.clone()).collect();
        let table =
            matrix_report_from(&paths).unwrap_or_else(|e| fail(&format!("report failed: {e}")));
        print!(
            "{}",
            if args.csv {
                table.to_csv()
            } else {
                table.to_markdown()
            }
        );
    }
}

/// The CI gate behind `matrix --smoke`, on the 50k-user scale-free
/// preset through the sharded store, with the [`FaultPlan::smoke`]
/// preset active on every cell:
///
/// 1. every record parses against the schema;
/// 2. every record satisfies the lazy-store invariant
///    `rows_materialized ≤ participants_touched`;
/// 3. rerunning the whole grid on the **dense** backend reproduces every
///    record byte-identically after [`matrix::backend_invariant`]
///    normalization (only the `backend`/`rows_materialized` fields and
///    volatile `eval_ms` may differ);
/// 4. one cell rerun standalone reproduces its file bytes (modulo
///    `eval_ms`, the wall-clock field);
/// 5. the fedrecattack cell of **each model family** killed at a mid-run
///    checkpoint and resumed in a fresh simulation reproduces the
///    straight run's records and final item matrix byte-identically at
///    1, 2 and 8 threads (the NCF arm additionally round-trips the
///    shared `Θ` block through the checkpoint);
/// 6. rerunning the MF probe cell under `--eval-mode pruned` and
///    `incremental` (at 1 and 2 eval threads) reproduces the full
///    sweep's records byte-identically after [`matrix::mode_invariant`]
///    normalization — and the pruned rerun actually skips items;
/// 7. every MF cell served live mid-training top-K traffic
///    ([`MatrixConfig::serve`] is on for the smoke grid): publish counts
///    strictly increase across each cell's records, the final record
///    observed real staleness (probes queued one emitting epoch drain at
///    the next), and — enforced inside the harness, which panics
///    otherwise — every served response was byte-identical to offline
///    evaluation of the snapshot its epoch tag names (no torn `V`).
///    NCF cells skip the probe (its offline verifier is MF dot-product
///    math) and must report the zero serve fields;
/// 8. the NCF probe cell reruns byte-identically standalone, and a rerun
///    under `--eval-mode pruned` is byte-identical *including* the mode
///    fields — NCF cells pin `full`-mode evaluation.
///
/// [`FaultPlan::smoke`]: fedrec_federated::FaultPlan::smoke
fn smoke_checks(cfg: &MatrixConfig, outcomes: &[matrix::CellOutcome]) {
    let mut checked = 0usize;
    // One read per cell file; the later identity checks reuse these lines.
    let sharded_cells: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            std::fs::read_to_string(&o.path)
                .unwrap_or_else(|e| fail(&format!("read {}: {e}", o.path.display())))
                .lines()
                .map(String::from)
                .collect()
        })
        .collect();
    for (o, lines) in outcomes.iter().zip(&sharded_cells) {
        for line in lines {
            matrix::validate_record(line).unwrap_or_else(|e| fail(&format!("schema: {e}")));
            let pairs = matrix::parse_record(line)
                .unwrap_or_else(|| fail(&format!("unparseable record: {line}")));
            let get = |key: &str| -> usize {
                pairs
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.parse().ok())
                    .unwrap_or_else(|| fail(&format!("record missing {key}: {line}")))
            };
            let (rows, touched) = (get("rows_materialized"), get("participants_touched"));
            if rows > touched {
                fail(&format!(
                    "lazy invariant violated in cell {}: {rows} rows materialized > \
                     {touched} participants touched",
                    o.cell.id()
                ));
            }
            checked += 1;
        }
        // Serve gate: the smoke grid runs with the live serving probe on,
        // so every MF cell must have published each emitting epoch's
        // snapshot (strictly increasing counts) and its final record must
        // have observed genuine staleness — probes queued at one emitting
        // epoch are served at the next, one eval cadence behind training.
        // NCF cells are exempt by design (the probe's offline verifier is
        // MF dot-product math) and must report the zero serve fields.
        let serve_counts: Vec<u64> = lines
            .iter()
            .map(|l| {
                matrix::parse_record(l)
                    .and_then(|p| p.into_iter().find(|(k, _)| k == "serve_publishes"))
                    .and_then(|(_, v)| v.parse().ok())
                    .unwrap_or_else(|| fail(&format!("record missing serve_publishes: {l}")))
            })
            .collect();
        if o.cell.model == ModelKind::Ncf {
            if serve_counts.iter().any(|&c| c != 0) {
                fail(&format!(
                    "serve gate: NCF cell {} reported serve publishes: {serve_counts:?}",
                    o.cell.id()
                ));
            }
            continue;
        }
        if serve_counts.windows(2).any(|w| w[0] >= w[1]) || serve_counts.last() == Some(&0) {
            fail(&format!(
                "serve gate: publish counts not strictly increasing in cell {}: {serve_counts:?}",
                o.cell.id()
            ));
        }
        let final_lag: u64 = lines
            .last()
            .and_then(|l| matrix::parse_record(l))
            .and_then(|p| p.into_iter().find(|(k, _)| k == "served_epoch_lag"))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| fail("final record missing served_epoch_lag"));
        if final_lag == 0 {
            fail(&format!(
                "serve gate: cell {} never observed serving staleness",
                o.cell.id()
            ));
        }
    }

    // Dense-vs-sharded byte-identity: the same grid on the eager backend
    // must agree on every backend-invariant byte of every record.
    let dense_cfg = MatrixConfig {
        backend: StoreBackend::Dense,
        ..cfg.clone()
    };
    let dense = matrix::run_matrix_collect(&dense_cfg);
    if dense.len() != outcomes.len() {
        fail("dense rerun produced a different cell count");
    }
    for ((o, s_lines), (cell, dense_lines)) in outcomes.iter().zip(&sharded_cells).zip(&dense) {
        if o.cell != *cell {
            fail("dense rerun cell order diverged");
        }
        let sharded: Vec<String> = s_lines
            .iter()
            .map(|l| matrix::backend_invariant(l))
            .collect();
        let dense_inv: Vec<String> = dense_lines
            .iter()
            .map(|l| matrix::backend_invariant(l))
            .collect();
        if sharded != dense_inv {
            fail(&format!(
                "dense vs sharded records diverged for cell {}:\n  sharded: {:?}\n  dense:   {:?}",
                cell.id(),
                sharded,
                dense_inv
            ));
        }
    }

    let vol = |lines: &[String]| -> Vec<String> {
        lines
            .iter()
            .map(|l| matrix::volatile_invariant(l))
            .collect()
    };
    // The eval-mode probe must be an MF cell: NCF cells pin `full` mode
    // (the pruned/incremental bounds are dot-product math), so rerunning
    // one under another mode would trivially pass without exercising the
    // fast paths.
    let probe_idx = outcomes
        .iter()
        .rposition(|o| o.cell.model == ModelKind::Mf)
        .unwrap_or_else(|| fail("smoke grid produced no MF cells"));
    let probe = &outcomes[probe_idx];
    let rerun = matrix::run_cell(cfg, &probe.cell);
    let original = &sharded_cells[probe_idx];
    if vol(&rerun) != vol(original) {
        fail(&format!(
            "determinism: standalone rerun of cell {} diverged from its file",
            probe.cell.id()
        ));
    }

    // Eval-mode identity gate: the pruned and incremental fast paths must
    // reproduce the full blocked sweep's records byte-identically modulo
    // the mode bookkeeping fields, at both 1 and 2 eval threads.
    let full_inv: Vec<String> = original.iter().map(|l| matrix::mode_invariant(l)).collect();
    let mut pruned_skipped = 0u64;
    for mode in [EvalMode::Pruned, EvalMode::Incremental] {
        for threads in [1usize, 2] {
            let mode_cfg = MatrixConfig {
                eval_mode: mode,
                eval_threads: threads,
                ..cfg.clone()
            };
            let lines = matrix::run_cell(&mode_cfg, &probe.cell);
            let inv: Vec<String> = lines.iter().map(|l| matrix::mode_invariant(l)).collect();
            if inv != full_inv {
                fail(&format!(
                    "eval-mode identity: cell {} under {} x{threads} eval threads diverged \
                     from the full sweep",
                    probe.cell.id(),
                    mode.label()
                ));
            }
            if mode == EvalMode::Pruned && threads == 1 {
                pruned_skipped = lines
                    .iter()
                    .filter_map(|l| matrix::parse_record(l))
                    .filter_map(|pairs| {
                        pairs
                            .into_iter()
                            .find(|(k, _)| k == "items_skipped")
                            .and_then(|(_, v)| v.parse::<u64>().ok())
                    })
                    .sum();
            }
        }
    }
    if pruned_skipped == 0 {
        fail("eval-mode identity: pruned evaluation never skipped an item");
    }

    // NCF probe gate: the last NCF cell rerun standalone must reproduce
    // its file bytes, and a rerun under `--eval-mode pruned` must be
    // byte-identical *including* the mode bookkeeping fields — NCF cells
    // always evaluate in `full` mode, whatever the grid asks for.
    let ncf_idx = outcomes
        .iter()
        .rposition(|o| o.cell.model == ModelKind::Ncf)
        .unwrap_or_else(|| fail("smoke grid produced no NCF cells"));
    let ncf_probe = &outcomes[ncf_idx];
    if vol(&matrix::run_cell(cfg, &ncf_probe.cell)) != vol(&sharded_cells[ncf_idx]) {
        fail(&format!(
            "determinism: standalone rerun of NCF cell {} diverged from its file",
            ncf_probe.cell.id()
        ));
    }
    let ncf_pruned_cfg = MatrixConfig {
        eval_mode: EvalMode::Pruned,
        ..cfg.clone()
    };
    if vol(&matrix::run_cell(&ncf_pruned_cfg, &ncf_probe.cell)) != vol(&sharded_cells[ncf_idx]) {
        fail(&format!(
            "NCF cell {} did not pin full-mode evaluation under --eval-mode pruned",
            ncf_probe.cell.id()
        ));
    }

    // Crash-resume gate: kill the fedrecattack cell mid-run (checkpoint
    // after epoch 3 of 8, drop the simulation), restore in a fresh one
    // and finish. Records *and* the final server item matrix must be
    // byte-identical to an uninterrupted run, whatever the thread count.
    // An attacked (ρ > 0) cell so the adversary's own checkpointed state
    // (the user approximator and its RNG) is part of what must resume.
    // Run once per model family: the NCF arm additionally round-trips the
    // shared `Θ` block and the paired pending-upload state through
    // `Simulation::checkpoint/restore`.
    let mut crash_ids = Vec::new();
    for model in ModelKind::ALL {
        let crash_cell = outcomes
            .iter()
            .find(|o| {
                o.cell.model == model
                    && o.cell.attack == AttackMethod::FedRecAttack
                    && o.cell.rho > 0.0
            })
            .map(|o| o.cell)
            .unwrap_or_else(|| {
                fail(&format!(
                    "smoke grid has no attacked {} fedrecattack cell",
                    model.label()
                ))
            });
        let (straight_lines, straight_digest) = matrix::run_cell_traced(cfg, &crash_cell, 1);
        for threads in [1usize, 2, 8] {
            let (lines, digest) = matrix::run_cell_resumed(cfg, &crash_cell, 3, threads);
            if vol(&lines) != vol(&straight_lines) {
                fail(&format!(
                    "crash-resume: records of cell {} at {threads} thread(s) diverged from the \
                     uninterrupted run",
                    crash_cell.id()
                ));
            }
            if digest != straight_digest {
                fail(&format!(
                    "crash-resume: final item matrix of cell {} at {threads} thread(s) diverged \
                     from the uninterrupted run",
                    crash_cell.id()
                ));
            }
        }
        crash_ids.push(crash_cell.id());
    }

    println!(
        "smoke OK: {checked} records schema-valid, rows_materialized <= participants_touched \
         in every record, dense/sharded byte-identical across {} cells (MF and NCF), cell {} \
         byte-identical on standalone rerun and under pruned/incremental eval modes at 1/2 \
         eval threads ({pruned_skipped} items pruned), NCF cell {} byte-identical on \
         standalone rerun and pinned to full-mode eval, cells {} kill-and-resume \
         byte-identical at 1/2/8 threads, every MF cell served offline-identical \
         mid-training top-K traffic",
        outcomes.len(),
        probe.cell.id(),
        ncf_probe.cell.id(),
        crash_ids.join(" and ")
    );
}

fn cmd_cell(args: &Args) {
    let (Some(attack), Some(defense), Some(rho)) = (args.attack, args.defense, args.rho) else {
        usage()
    };
    let cfg = matrix_config(args);
    let cell = CellSpec {
        model: args.model.unwrap_or(ModelKind::Mf),
        attack,
        defense,
        rho,
    };
    match &args.out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| fail(&format!("create {path}: {e}")));
            let mut w = std::io::BufWriter::new(file);
            let n = run_cell_into(&cfg, &cell, &mut w)
                .unwrap_or_else(|e| fail(&format!("cell failed: {e}")));
            w.flush().unwrap_or_else(|e| fail(&format!("flush: {e}")));
            eprintln!("wrote {n} records for cell {} to {path}", cell.id());
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            run_cell_into(&cfg, &cell, &mut w)
                .unwrap_or_else(|e| fail(&format!("cell failed: {e}")));
        }
    }
}

fn cmd_scale(args: &Args) {
    if args.smoke {
        match scale_smoke() {
            Ok(summary) => println!("{summary}"),
            Err(e) => fail(&format!("scale smoke failed: {e}")),
        }
        return;
    }
    let mut spec = ScaleSpec::million();
    if let Some(u) = args.users {
        if u == 0 {
            fail("--users must be positive");
        }
        spec.data.num_users = u;
    }
    if let Some(m) = args.items {
        // The generator needs room for negatives (max_degree <= m/2) and
        // at least min_degree items below the cap.
        if m / 2 < spec.data.min_degree {
            fail(&format!(
                "--items {m} too small: need at least {} items for min degree {}",
                2 * spec.data.min_degree,
                spec.data.min_degree
            ));
        }
        spec.data.num_items = m;
        spec.data.max_degree = spec.data.max_degree.min(m / 2);
    }
    if let Some(e) = args.epochs {
        spec.epochs = e;
    }
    if let Some(f) = args.fraction {
        spec.client_fraction = f;
    }
    if let Some(w) = args.workers {
        spec.threads = w.max(1);
    }
    if let Some(e) = args.eval_users {
        spec.eval_users = e;
    }
    if let Some(s) = args.shard_rows {
        spec.data.shard_rows = s;
    }
    spec.seed = args.seed;
    let backend = if args.backend_dense == Some(true) {
        StoreBackend::Dense
    } else {
        StoreBackend::Sharded {
            shard_rows: args.shard_rows.unwrap_or(StoreBackend::DEFAULT_SHARD_ROWS),
        }
    };
    // fedrec-lint: allow(wall-clock) — stderr summary timing; the JSON report's timings come from run_scale's own suppressed clocks
    let started = std::time::Instant::now();
    let report = run_scale(&spec, backend);
    let rendered = format!("{}\n", report.to_json());
    emit(&rendered, args, 1);
    eprintln!(
        "scale run: {} users, {} rounds, {} participants touched, {} rows materialized \
         ({:.1}s build, {:.1}s train, {:.1}s eval, {:.1}s total)",
        report.users,
        report.epochs,
        report.participants_touched,
        report.rows_materialized,
        report.build_secs,
        report.train_secs,
        report.eval_secs,
        started.elapsed().as_secs_f64()
    );
}

fn cmd_serve(args: &Args) {
    if args.smoke {
        match serve_smoke() {
            Ok(summary) => println!("{summary}"),
            Err(e) => fail(&format!("serve smoke failed: {e}")),
        }
        return;
    }
    let mut spec = ServeSpec::million();
    if let Some(u) = args.users {
        if u == 0 {
            fail("--users must be positive");
        }
        spec.users = u;
        spec.hot_users = spec.hot_users.min(u);
    }
    if let Some(m) = args.items {
        if m == 0 {
            fail("--items must be positive");
        }
        spec.items = m;
    }
    if let Some(r) = args.requests {
        spec.requests = r;
    }
    if let Some(t) = args.threads {
        spec.threads = t;
    }
    if let Some(p) = args.publish_every {
        spec.publish_every = p;
    }
    if let Some(k) = args.k {
        spec.top_k = k;
    }
    spec.seed = args.seed;
    let report = run_serve(&spec);
    let rendered = format!("{}\n", report.to_json());
    emit(&rendered, args, 1);
    eprintln!(
        "serve run: {} requests over {} users / {} items at {:.0} req/s \
         ({} threads), p50 {:.1} us, p99 {:.1} us, hit rate {:.3}, \
         {} publishes, mean epoch lag {:.2} ({:.1}s build, {:.1}s serve)",
        report.requests,
        report.users,
        report.items,
        report.req_per_sec,
        report.threads,
        report.p50_us,
        report.p99_us,
        report.hit_rate,
        report.publishes,
        report.mean_epoch_lag,
        report.build_secs,
        report.serve_secs
    );
}

fn cmd_report(args: &Args) {
    let dir = args.dir.clone().unwrap_or_else(|| usage());
    let table = matrix_report(&dir).unwrap_or_else(|e| fail(&format!("report failed: {e}")));
    let rendered = if args.csv {
        format!("# {}\n{}\n", table.title, table.to_csv())
    } else {
        format!("{}\n", table.to_markdown())
    };
    emit(&rendered, args, 1);
}

fn run_one(name: &str, args: &Args) -> Vec<Table> {
    match name {
        "table2" => vec![table2_datasets(args.scale, args.seed)],
        "table3" => vec![table3_xi_sweep(args.scale, args.seed)],
        "table4" => vec![table4_rho_sweep(args.scale, args.seed)],
        "table5" => vec![table5_kappa_sweep(args.scale, args.seed)],
        "table6" => vec![table6_data_poisoning(args.scale, args.seed)],
        "table7" => vec![table7_effectiveness(args.scale, args.seed)],
        "table8" => vec![table8_model_poisoning(args.scale, args.seed)],
        "table9" => vec![table9_ablation(args.scale, args.seed)],
        "fig3" => DatasetId::ALL
            .iter()
            .map(|id| fig3_side_effects(args.scale, *id, args.eval_every.unwrap_or(10), args.seed))
            .collect(),
        "defenses" => vec![fedrec_experiments::tables::extension_defenses(
            args.scale, args.seed,
        )],
        "detection" => vec![fedrec_experiments::extension_detection(
            args.scale, args.seed,
        )],
        "all" => {
            let mut v = Vec::new();
            for e in [
                "table2",
                "table3",
                "table4",
                "table5",
                "table6",
                "table7",
                "table8",
                "table9",
                "fig3",
                "defenses",
                "detection",
            ] {
                v.extend(run_one(e, args));
            }
            v
        }
        _ => usage(),
    }
}

fn emit(rendered: &str, args: &Args, tables: usize) {
    match &args.out {
        Some(path) => {
            let mut f = std::fs::File::create(path).expect("create output file");
            f.write_all(rendered.as_bytes()).expect("write output");
            eprintln!("wrote {tables} table(s) to {path}");
        }
        None => print!("{rendered}"),
    }
}

fn main() {
    // `repro lint` forwards its flags verbatim to the shared fedrec-lint
    // CLI driver, bypassing the experiment-flag parser.
    {
        // fedrec-lint: allow(wall-clock) — CLI dispatch; argv never feeds simulation state
        let mut raw = std::env::args().skip(1);
        if raw.next().as_deref() == Some("lint") {
            std::process::exit(fedrec_lint::run_cli(&raw.collect::<Vec<_>>()));
        }
    }
    let args = parse_args();
    match args.experiment.as_str() {
        "matrix" => return cmd_matrix(&args),
        "cell" => return cmd_cell(&args),
        "report" => return cmd_report(&args),
        "scale" => return cmd_scale(&args),
        "serve" => return cmd_serve(&args),
        _ => {}
    }
    // fedrec-lint: allow(wall-clock) — progress timing on stderr only; table bytes never include it
    let started = std::time::Instant::now();
    let tables = run_one(&args.experiment, &args);
    let rendered: String = tables
        .iter()
        .map(|t| {
            if args.csv {
                format!("# {}\n{}\n", t.title, t.to_csv())
            } else {
                format!("{}\n", t.to_markdown())
            }
        })
        .collect();
    emit(&rendered, &args, tables.len());
    eprintln!(
        "({} table(s) in {:.1}s)",
        tables.len(),
        started.elapsed().as_secs_f64()
    );
}

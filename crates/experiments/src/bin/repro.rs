//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale smoke|paper] [--seed N] [--dataset ml100k|ml1m|steam]
//!       [--eval-every N] [--csv] [--out FILE]
//!
//! experiments: table2 table3 table4 table5 table6 table7 table8 table9
//!              fig3 defenses all
//! ```
//!
//! `--scale smoke` (default) runs in seconds on miniature datasets;
//! `--scale paper` reproduces the full §V-A protocol (much slower).

use fedrec_experiments::{
    fig3_side_effects, table2_datasets, table3_xi_sweep, table4_rho_sweep, table5_kappa_sweep,
    table6_data_poisoning, table7_effectiveness, table8_model_poisoning, table9_ablation,
    DatasetId, Scale, Table,
};
use std::io::Write;

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
    dataset: DatasetId,
    eval_every: usize,
    csv: bool,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <table2|table3|table4|table5|table6|table7|table8|table9|fig3|defenses|detection|all>\n\
         \x20      [--scale smoke|paper] [--seed N] [--dataset ml100k|ml1m|steam]\n\
         \x20      [--eval-every N] [--csv] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        scale: Scale::Smoke,
        seed: 42,
        dataset: DatasetId::Ml100k,
        eval_every: 10,
        csv: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    match it.next() {
        Some(e) => args.experiment = e,
        None => usage(),
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.scale = Scale::parse(&v).unwrap_or_else(|| usage());
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--dataset" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.dataset = DatasetId::parse(&v).unwrap_or_else(|| usage());
            }
            "--eval-every" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.eval_every = v.parse().unwrap_or_else(|_| usage());
            }
            "--csv" => args.csv = true,
            "--out" => args.out = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    args
}

fn run_one(name: &str, args: &Args) -> Vec<Table> {
    match name {
        "table2" => vec![table2_datasets(args.scale, args.seed)],
        "table3" => vec![table3_xi_sweep(args.scale, args.seed)],
        "table4" => vec![table4_rho_sweep(args.scale, args.seed)],
        "table5" => vec![table5_kappa_sweep(args.scale, args.seed)],
        "table6" => vec![table6_data_poisoning(args.scale, args.seed)],
        "table7" => vec![table7_effectiveness(args.scale, args.seed)],
        "table8" => vec![table8_model_poisoning(args.scale, args.seed)],
        "table9" => vec![table9_ablation(args.scale, args.seed)],
        "fig3" => DatasetId::ALL
            .iter()
            .map(|id| fig3_side_effects(args.scale, *id, args.eval_every, args.seed))
            .collect(),
        "defenses" => vec![fedrec_experiments::tables::extension_defenses(
            args.scale, args.seed,
        )],
        "detection" => vec![fedrec_experiments::extension_detection(
            args.scale, args.seed,
        )],
        "all" => {
            let mut v = Vec::new();
            for e in [
                "table2",
                "table3",
                "table4",
                "table5",
                "table6",
                "table7",
                "table8",
                "table9",
                "fig3",
                "defenses",
                "detection",
            ] {
                v.extend(run_one(e, args));
            }
            v
        }
        _ => usage(),
    }
}

fn main() {
    let args = parse_args();
    let started = std::time::Instant::now();
    let tables = run_one(&args.experiment, &args);
    let rendered: String = tables
        .iter()
        .map(|t| {
            if args.csv {
                format!("# {}\n{}\n", t.title, t.to_csv())
            } else {
                format!("{}\n", t.to_markdown())
            }
        })
        .collect();
    match &args.out {
        Some(path) => {
            let mut f = std::fs::File::create(path).expect("create output file");
            f.write_all(rendered.as_bytes()).expect("write output");
            eprintln!(
                "wrote {} table(s) to {path} in {:.1}s",
                tables.len(),
                started.elapsed().as_secs_f64()
            );
        }
        None => {
            print!("{rendered}");
            eprintln!(
                "({} table(s) in {:.1}s)",
                tables.len(),
                started.elapsed().as_secs_f64()
            );
        }
    }
}

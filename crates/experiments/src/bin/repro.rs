//! `repro` — regenerate any table or figure of the paper, or run the
//! defended attack×defense×ρ scenario matrix.
//!
//! ```text
//! repro <experiment> [--scale smoke|paper] [--seed N] [--dataset ml100k|ml1m|steam]
//!       [--eval-every N] [--csv] [--out FILE]
//!
//! experiments: table2 table3 table4 table5 table6 table7 table8 table9
//!              fig3 defenses detection all
//!
//! repro matrix [--attacks a,b,..|all] [--defenses d,e,..|all] [--rhos r1,r2,..]
//!       [--out-dir DIR] [--workers N] [--epochs N] [--scale ...] [--seed N]
//!       [--dataset ...] [--eval-every N] [--smoke]
//! repro cell --attack A --defense D --rho R [--epochs N] [--scale ...]
//!       [--seed N] [--dataset ...] [--eval-every N] [--out FILE]
//! repro report --dir DIR [--csv] [--out FILE]
//! repro scale [--smoke] [--users N] [--items N] [--epochs N] [--fraction F]
//!       [--workers N] [--eval-users N] [--backend dense|sharded]
//!       [--shard-rows N] [--seed N] [--out FILE]
//! ```
//!
//! `--scale smoke` (default) runs in seconds on miniature datasets;
//! `--scale paper` reproduces the full §V-A protocol (much slower).
//! `matrix --smoke` runs a tiny fixed grid, checks every record's schema
//! and reruns one cell standalone to assert byte-identical output — the
//! CI determinism gate.
//!
//! `scale` runs a scale-free population through the sharded client store
//! (defaults: 1M users / 100k items, ~500 participants per round).
//! `scale --smoke` is the 50k-user CI gate: it asserts the lazy store
//! materialized no more client rows than participants were touched, and
//! that dense and sharded backends are byte-identical across thread
//! counts.

use fedrec_baselines::registry::AttackMethod;
use fedrec_experiments::matrix::{
    self, matrix_report, matrix_report_from, run_cell_into, run_matrix, CellSpec, DefenseKind,
    MatrixConfig,
};
use fedrec_experiments::{
    fig3_side_effects, run_scale, scale_smoke, table2_datasets, table3_xi_sweep, table4_rho_sweep,
    table5_kappa_sweep, table6_data_poisoning, table7_effectiveness, table8_model_poisoning,
    table9_ablation, DatasetId, Scale, ScaleSpec, Table,
};
use fedrec_federated::StoreBackend;
use std::io::Write;
use std::path::PathBuf;

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
    dataset: DatasetId,
    eval_every: usize,
    csv: bool,
    out: Option<String>,
    // matrix / cell / report options
    attacks: Option<Vec<AttackMethod>>,
    defenses: Option<Vec<DefenseKind>>,
    rhos: Option<Vec<f64>>,
    attack: Option<AttackMethod>,
    defense: Option<DefenseKind>,
    rho: Option<f64>,
    epochs: Option<usize>,
    workers: Option<usize>,
    out_dir: Option<PathBuf>,
    dir: Option<PathBuf>,
    smoke: bool,
    // scale options
    users: Option<usize>,
    items: Option<usize>,
    fraction: Option<f64>,
    eval_users: Option<usize>,
    backend_dense: bool,
    shard_rows: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <table2|table3|table4|table5|table6|table7|table8|table9|fig3|defenses|detection|all>\n\
         \x20      [--scale smoke|paper] [--seed N] [--dataset ml100k|ml1m|steam]\n\
         \x20      [--eval-every N] [--csv] [--out FILE]\n\
         \x20 repro matrix [--attacks a,b|all] [--defenses d,e|all] [--rhos r1,r2]\n\
         \x20      [--out-dir DIR] [--workers N] [--epochs N] [--smoke] [shared flags]\n\
         \x20 repro cell --attack A --defense D --rho R [--out FILE] [shared flags]\n\
         \x20 repro report --dir DIR [--csv] [--out FILE]\n\
         \x20 repro scale [--smoke] [--users N] [--items N] [--epochs N] [--fraction F]\n\
         \x20      [--workers N] [--eval-users N] [--backend dense|sharded]\n\
         \x20      [--shard-rows N] [--seed N] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        scale: Scale::Smoke,
        seed: 42,
        dataset: DatasetId::Ml100k,
        eval_every: 10,
        csv: false,
        out: None,
        attacks: None,
        defenses: None,
        rhos: None,
        attack: None,
        defense: None,
        rho: None,
        epochs: None,
        workers: None,
        out_dir: None,
        dir: None,
        smoke: false,
        users: None,
        items: None,
        fraction: None,
        eval_users: None,
        backend_dense: false,
        shard_rows: None,
    };
    let mut it = std::env::args().skip(1);
    match it.next() {
        Some(e) => args.experiment = e,
        None => usage(),
    }
    while let Some(flag) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scale" => args.scale = Scale::parse(&next()).unwrap_or_else(|| usage()),
            "--seed" => args.seed = next().parse().unwrap_or_else(|_| usage()),
            "--dataset" => args.dataset = DatasetId::parse(&next()).unwrap_or_else(|| usage()),
            "--eval-every" => args.eval_every = next().parse().unwrap_or_else(|_| usage()),
            "--csv" => args.csv = true,
            "--out" => args.out = Some(next()),
            "--attacks" => args.attacks = Some(parse_attacks(&next())),
            "--defenses" => args.defenses = Some(parse_defenses(&next())),
            "--rhos" => args.rhos = Some(parse_rhos(&next())),
            "--attack" => {
                args.attack = Some(AttackMethod::parse(&next()).unwrap_or_else(|| usage()))
            }
            "--defense" => {
                args.defense = Some(DefenseKind::parse(&next()).unwrap_or_else(|| usage()))
            }
            "--rho" => args.rho = Some(next().parse().unwrap_or_else(|_| usage())),
            "--epochs" => args.epochs = Some(next().parse().unwrap_or_else(|_| usage())),
            "--workers" => args.workers = Some(next().parse().unwrap_or_else(|_| usage())),
            "--out-dir" => args.out_dir = Some(PathBuf::from(next())),
            "--dir" => args.dir = Some(PathBuf::from(next())),
            "--smoke" => args.smoke = true,
            "--users" => args.users = Some(next().parse().unwrap_or_else(|_| usage())),
            "--items" => args.items = Some(next().parse().unwrap_or_else(|_| usage())),
            "--fraction" => args.fraction = Some(next().parse().unwrap_or_else(|_| usage())),
            "--eval-users" => args.eval_users = Some(next().parse().unwrap_or_else(|_| usage())),
            "--backend" => match next().to_ascii_lowercase().as_str() {
                "dense" => args.backend_dense = true,
                "sharded" => args.backend_dense = false,
                _ => usage(),
            },
            "--shard-rows" => {
                let v: usize = next().parse().unwrap_or_else(|_| usage());
                if v == 0 {
                    usage()
                }
                args.shard_rows = Some(v);
            }
            _ => usage(),
        }
    }
    args
}

fn parse_attacks(s: &str) -> Vec<AttackMethod> {
    if s.eq_ignore_ascii_case("all") {
        return AttackMethod::ALL.to_vec();
    }
    s.split(',')
        .map(|a| AttackMethod::parse(a.trim()).unwrap_or_else(|| usage()))
        .collect()
}

fn parse_defenses(s: &str) -> Vec<DefenseKind> {
    if s.eq_ignore_ascii_case("all") {
        return DefenseKind::ALL.to_vec();
    }
    s.split(',')
        .map(|d| DefenseKind::parse(d.trim()).unwrap_or_else(|| usage()))
        .collect()
}

fn parse_rhos(s: &str) -> Vec<f64> {
    s.split(',')
        .map(|r| r.trim().parse().unwrap_or_else(|_| usage()))
        .collect()
}

fn matrix_config(args: &Args) -> MatrixConfig {
    let mut cfg = if args.smoke {
        MatrixConfig::smoke(args.seed)
    } else {
        MatrixConfig::new(args.scale, args.seed)
    };
    cfg.dataset = args.dataset;
    if !args.smoke {
        cfg.eval_every = args.eval_every;
    }
    if let Some(a) = &args.attacks {
        cfg.attacks = a.clone();
    }
    if let Some(d) = &args.defenses {
        cfg.defenses = d.clone();
    }
    if let Some(r) = &args.rhos {
        cfg.rhos = r.clone();
    }
    if let Some(e) = args.epochs {
        cfg.epochs = Some(e);
    }
    if let Some(w) = args.workers {
        cfg.workers = w.max(1);
    }
    cfg
}

fn fail(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(1);
}

fn cmd_matrix(args: &Args) {
    let cfg = matrix_config(args);
    let out_dir = args.out_dir.clone().unwrap_or_else(|| {
        PathBuf::from(if args.smoke {
            "target/matrix-smoke"
        } else {
            "matrix-out"
        })
    });
    if args.smoke {
        let _ = std::fs::remove_dir_all(&out_dir);
    }
    let started = std::time::Instant::now();
    let outcomes =
        run_matrix(&cfg, &out_dir).unwrap_or_else(|e| fail(&format!("matrix run failed: {e}")));
    let records: usize = outcomes.iter().map(|o| o.records).sum();
    eprintln!(
        "ran {} cells ({} records) into {} with {} workers in {:.1}s",
        outcomes.len(),
        records,
        out_dir.display(),
        cfg.workers,
        started.elapsed().as_secs_f64()
    );
    if args.smoke {
        smoke_checks(&cfg, &outcomes);
    } else {
        // Report over exactly the cells this run wrote — the directory
        // may hold files from earlier runs with other grids.
        let paths: Vec<std::path::PathBuf> = outcomes.iter().map(|o| o.path.clone()).collect();
        let table =
            matrix_report_from(&paths).unwrap_or_else(|e| fail(&format!("report failed: {e}")));
        print!(
            "{}",
            if args.csv {
                table.to_csv()
            } else {
                table.to_markdown()
            }
        );
    }
}

/// The CI gate behind `matrix --smoke`: every record parses against the
/// schema, and one cell rerun standalone reproduces its file bytes.
fn smoke_checks(cfg: &MatrixConfig, outcomes: &[matrix::CellOutcome]) {
    let mut checked = 0usize;
    for o in outcomes {
        let text = std::fs::read_to_string(&o.path)
            .unwrap_or_else(|e| fail(&format!("read {}: {e}", o.path.display())));
        for line in text.lines() {
            matrix::validate_record(line).unwrap_or_else(|e| fail(&format!("schema: {e}")));
            checked += 1;
        }
    }
    let probe = outcomes
        .last()
        .unwrap_or_else(|| fail("smoke grid produced no cells"));
    let rerun = matrix::run_cell(cfg, &probe.cell).join("\n") + "\n";
    let original = std::fs::read_to_string(&probe.path)
        .unwrap_or_else(|e| fail(&format!("read {}: {e}", probe.path.display())));
    if rerun != original {
        fail(&format!(
            "determinism: standalone rerun of cell {} diverged from its file",
            probe.cell.id()
        ));
    }
    println!(
        "smoke OK: {checked} records schema-valid, cell {} byte-identical on standalone rerun",
        probe.cell.id()
    );
}

fn cmd_cell(args: &Args) {
    let (Some(attack), Some(defense), Some(rho)) = (args.attack, args.defense, args.rho) else {
        usage()
    };
    let cfg = matrix_config(args);
    let cell = CellSpec {
        attack,
        defense,
        rho,
    };
    match &args.out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| fail(&format!("create {path}: {e}")));
            let mut w = std::io::BufWriter::new(file);
            let n = run_cell_into(&cfg, &cell, &mut w)
                .unwrap_or_else(|e| fail(&format!("cell failed: {e}")));
            w.flush().unwrap_or_else(|e| fail(&format!("flush: {e}")));
            eprintln!("wrote {n} records for cell {} to {path}", cell.id());
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            run_cell_into(&cfg, &cell, &mut w)
                .unwrap_or_else(|e| fail(&format!("cell failed: {e}")));
        }
    }
}

fn cmd_scale(args: &Args) {
    if args.smoke {
        match scale_smoke() {
            Ok(summary) => println!("{summary}"),
            Err(e) => fail(&format!("scale smoke failed: {e}")),
        }
        return;
    }
    let mut spec = ScaleSpec::million();
    if let Some(u) = args.users {
        if u == 0 {
            fail("--users must be positive");
        }
        spec.data.num_users = u;
    }
    if let Some(m) = args.items {
        // The generator needs room for negatives (max_degree <= m/2) and
        // at least min_degree items below the cap.
        if m / 2 < spec.data.min_degree {
            fail(&format!(
                "--items {m} too small: need at least {} items for min degree {}",
                2 * spec.data.min_degree,
                spec.data.min_degree
            ));
        }
        spec.data.num_items = m;
        spec.data.max_degree = spec.data.max_degree.min(m / 2);
    }
    if let Some(e) = args.epochs {
        spec.epochs = e;
    }
    if let Some(f) = args.fraction {
        spec.client_fraction = f;
    }
    if let Some(w) = args.workers {
        spec.threads = w.max(1);
    }
    if let Some(e) = args.eval_users {
        spec.eval_users = e;
    }
    if let Some(s) = args.shard_rows {
        spec.data.shard_rows = s;
    }
    spec.seed = args.seed;
    let backend = if args.backend_dense {
        StoreBackend::Dense
    } else {
        StoreBackend::Sharded {
            shard_rows: args.shard_rows.unwrap_or(StoreBackend::DEFAULT_SHARD_ROWS),
        }
    };
    let started = std::time::Instant::now();
    let report = run_scale(&spec, backend);
    let rendered = format!("{}\n", report.to_json());
    emit(&rendered, args, 1);
    eprintln!(
        "scale run: {} users, {} rounds, {} participants touched, {} rows materialized \
         ({:.1}s build, {:.1}s train, {:.1}s eval, {:.1}s total)",
        report.users,
        report.epochs,
        report.participants_touched,
        report.rows_materialized,
        report.build_secs,
        report.train_secs,
        report.eval_secs,
        started.elapsed().as_secs_f64()
    );
}

fn cmd_report(args: &Args) {
    let dir = args.dir.clone().unwrap_or_else(|| usage());
    let table = matrix_report(&dir).unwrap_or_else(|e| fail(&format!("report failed: {e}")));
    let rendered = if args.csv {
        format!("# {}\n{}\n", table.title, table.to_csv())
    } else {
        format!("{}\n", table.to_markdown())
    };
    emit(&rendered, args, 1);
}

fn run_one(name: &str, args: &Args) -> Vec<Table> {
    match name {
        "table2" => vec![table2_datasets(args.scale, args.seed)],
        "table3" => vec![table3_xi_sweep(args.scale, args.seed)],
        "table4" => vec![table4_rho_sweep(args.scale, args.seed)],
        "table5" => vec![table5_kappa_sweep(args.scale, args.seed)],
        "table6" => vec![table6_data_poisoning(args.scale, args.seed)],
        "table7" => vec![table7_effectiveness(args.scale, args.seed)],
        "table8" => vec![table8_model_poisoning(args.scale, args.seed)],
        "table9" => vec![table9_ablation(args.scale, args.seed)],
        "fig3" => DatasetId::ALL
            .iter()
            .map(|id| fig3_side_effects(args.scale, *id, args.eval_every, args.seed))
            .collect(),
        "defenses" => vec![fedrec_experiments::tables::extension_defenses(
            args.scale, args.seed,
        )],
        "detection" => vec![fedrec_experiments::extension_detection(
            args.scale, args.seed,
        )],
        "all" => {
            let mut v = Vec::new();
            for e in [
                "table2",
                "table3",
                "table4",
                "table5",
                "table6",
                "table7",
                "table8",
                "table9",
                "fig3",
                "defenses",
                "detection",
            ] {
                v.extend(run_one(e, args));
            }
            v
        }
        _ => usage(),
    }
}

fn emit(rendered: &str, args: &Args, tables: usize) {
    match &args.out {
        Some(path) => {
            let mut f = std::fs::File::create(path).expect("create output file");
            f.write_all(rendered.as_bytes()).expect("write output");
            eprintln!("wrote {tables} table(s) to {path}");
        }
        None => print!("{rendered}"),
    }
}

fn main() {
    let args = parse_args();
    match args.experiment.as_str() {
        "matrix" => return cmd_matrix(&args),
        "cell" => return cmd_cell(&args),
        "report" => return cmd_report(&args),
        "scale" => return cmd_scale(&args),
        _ => {}
    }
    let started = std::time::Instant::now();
    let tables = run_one(&args.experiment, &args);
    let rendered: String = tables
        .iter()
        .map(|t| {
            if args.csv {
                format!("# {}\n{}\n", t.title, t.to_csv())
            } else {
                format!("{}\n", t.to_markdown())
            }
        })
        .collect();
    emit(&rendered, &args, tables.len());
    eprintln!(
        "({} table(s) in {:.1}s)",
        tables.len(),
        started.elapsed().as_secs_f64()
    );
}

//! Fig. 3: side effects of FedRecAttack — training loss and HR@10 per
//! epoch, with and without the attack.

use crate::report::Table;
use crate::runner::{default_targets, malicious_count, run_experiment, ExperimentSpec};
use crate::scale::{DatasetId, Scale};
use crate::tables::NUM_TARGETS;
use fedrec_baselines::AttackMethod;
use fedrec_data::split::leave_one_out;

/// The ρ arms of Fig. 3 (`None` plus three malicious proportions).
pub const FIG3_RHOS: [(&str, f64); 4] = [
    ("none", 0.0),
    ("rho=3%", 0.03),
    ("rho=5%", 0.05),
    ("rho=10%", 0.10),
];

/// Produce the Fig. 3 series for one dataset: per epoch, the training
/// loss and (every `eval_every` epochs) HR@10 for each ρ arm.
///
/// Returns one long-format table: `arm, epoch, loss, hr_at_10` (the HR
/// column is empty on epochs without an evaluation), which plots directly
/// as the paper's two panels per dataset.
pub fn fig3_side_effects(scale: Scale, id: DatasetId, eval_every: usize, seed: u64) -> Table {
    assert!(eval_every > 0);
    let full = scale.dataset(id, None, seed);
    let (train, test) = leave_one_out(&full, seed ^ 0x10);
    let targets = default_targets(&train, NUM_TARGETS);

    let mut t = Table::new(
        format!(
            "Fig. 3: side effects of FedRecAttack on {} (training loss & HR@10 per epoch)",
            id.label()
        ),
        vec!["arm", "epoch", "training_loss", "hr_at_10"],
    );
    for &(arm, rho) in &FIG3_RHOS {
        let spec = ExperimentSpec {
            train: &train,
            test: &test,
            method: if rho == 0.0 {
                AttackMethod::None
            } else {
                AttackMethod::FedRecAttack
            },
            xi: match scale {
                Scale::Paper => 0.01,
                Scale::Smoke => 0.05,
            },
            rho,
            kappa: 60,
            fed: scale.fed_config(seed),
            targets: targets.clone(),
            seed,
            eval_every: Some(eval_every),
        };
        let _ = malicious_count(train.num_users(), rho); // (documented derivation)
        let out = run_experiment(&spec);
        let mut hr_at: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for (e, v) in out
            .history
            .hr_at_10
            .epochs
            .iter()
            .zip(out.history.hr_at_10.values.iter())
        {
            hr_at.insert(*e, *v);
        }
        for (epoch, loss) in out.history.losses.iter().enumerate() {
            let hr = hr_at
                .get(&(epoch + 1))
                .map(|v| format!("{v:.4}"))
                .unwrap_or_default();
            t.push_row(vec![
                arm.to_string(),
                format!("{}", epoch + 1),
                format!("{loss:.3}"),
                hr,
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_emits_all_arms_and_epochs() {
        let t = fig3_side_effects(Scale::Smoke, DatasetId::Ml100k, 10, 3);
        let epochs = Scale::Smoke.fed_config(3).epochs;
        assert_eq!(t.rows.len(), 4 * epochs);
        // HR cells appear exactly on eval epochs.
        let with_hr = t.rows.iter().filter(|r| !r[3].is_empty()).count();
        assert_eq!(with_hr, 4 * (epochs / 10));
        // All four arms present.
        for (arm, _) in FIG3_RHOS {
            assert!(t.rows.iter().any(|r| r[0] == arm), "missing arm {arm}");
        }
    }

    #[test]
    fn attacked_loss_stays_close_to_clean_loss() {
        // The stealthiness claim of §V-D at smoke scale: final training
        // loss under attack is within a modest factor of the clean loss.
        let t = fig3_side_effects(Scale::Smoke, DatasetId::Ml100k, 30, 4);
        let final_loss = |arm: &str| -> f64 {
            t.rows.iter().rfind(|r| r[0] == arm).expect("arm present")[2]
                .parse()
                .unwrap()
        };
        let clean = final_loss("none");
        let attacked = final_loss("rho=5%");
        assert!(
            attacked < clean * 1.5,
            "attack visibly distorts the loss curve: {clean} vs {attacked}"
        );
    }
}

//! The central experiment runner: one federated training run under one
//! attack, evaluated with the paper's metrics.

use fedrec_baselines::registry::{build_adversary, AttackEnv, AttackMethod};
use fedrec_data::split::TestSet;
use fedrec_data::Dataset;
use fedrec_federated::history::TrainingHistory;
use fedrec_federated::simulation::Snapshot;
use fedrec_federated::{FedConfig, Simulation};
use fedrec_linalg::Matrix;
use fedrec_recsys::eval::Evaluator;
use fedrec_recsys::MfModel;

/// Specification of one run.
#[derive(Debug, Clone)]
pub struct ExperimentSpec<'a> {
    /// Training interactions (after leave-one-out).
    pub train: &'a Dataset,
    /// Held-out test items.
    pub test: &'a TestSet,
    /// Which attack to run.
    pub method: AttackMethod,
    /// Proportion of public interactions ξ (only FedRecAttack reads it).
    pub xi: f64,
    /// Proportion of malicious users ρ (relative to the benign count).
    pub rho: f64,
    /// Row budget κ.
    pub kappa: usize,
    /// Federation configuration.
    pub fed: FedConfig,
    /// Target items `V^tar`.
    pub targets: Vec<u32>,
    /// Master seed for attack construction and splits.
    pub seed: u64,
    /// Record HR@10/ER@10 series every this many epochs (None = only at
    /// the end). Powers Fig. 3.
    pub eval_every: Option<usize>,
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// ER@5 at the end of training.
    pub er5: f64,
    /// ER@10 at the end of training.
    pub er10: f64,
    /// NDCG@10 of target items at the end of training.
    pub ndcg10: f64,
    /// HR@10 at the end of training.
    pub hr10: f64,
    /// Loss + metric series.
    pub history: TrainingHistory,
}

/// Number of malicious clients for a benign population of `n` at ratio ρ.
pub fn malicious_count(n: usize, rho: f64) -> usize {
    ((n as f64) * rho).round() as usize
}

/// Pick the default target set: `count` cold items (zero exposure before
/// the attack, the paper's starting condition).
pub fn default_targets(train: &Dataset, count: usize) -> Vec<u32> {
    train.coldest_items(count)
}

/// Assemble a dense [`MfModel`] snapshot from the current server items
/// and a streaming row source — the `O(n·k)` measurement path shared by
/// the table runners and the matrix's dense-population cells.
pub(crate) fn assemble_model(items: &Matrix, users: &dyn fedrec_recsys::UserRowSource) -> MfModel {
    let n = users.num_users();
    let mut mat = Matrix::zeros(n, items.cols());
    for u in 0..n {
        users.write_user_row(u, mat.row_mut(u));
    }
    MfModel::from_factors(mat, items.clone())
}

pub(crate) fn snapshot_model(snap: &Snapshot<'_>) -> MfModel {
    assemble_model(snap.items, snap.users)
}

/// Run one experiment end to end.
pub fn run_experiment(spec: &ExperimentSpec<'_>) -> Outcome {
    let n = spec.train.num_users();
    let num_malicious = malicious_count(n, spec.rho);
    let env = AttackEnv::over_dataset(spec.train, &spec.targets)
        .malicious(num_malicious)
        .kappa(spec.kappa)
        .k(spec.fed.k)
        .seed(spec.seed ^ 0xA7)
        .public(spec.xi, spec.seed ^ 0xD1);
    let adversary = build_adversary(spec.method, &env);
    let mut sim = Simulation::new(spec.train, spec.fed, adversary, num_malicious);

    let evaluator = Evaluator::new(spec.train, spec.test, &spec.targets, spec.seed ^ 0xE7);
    let history = match spec.eval_every {
        Some(every) if every > 0 => {
            let train = spec.train;
            let test = spec.test;
            let eval = &evaluator;
            let mut hook = move |snap: &Snapshot<'_>, hist: &mut TrainingHistory| {
                if (snap.epoch + 1).is_multiple_of(every) {
                    let model = snapshot_model(snap);
                    let rep = eval.evaluate(&model, train, test);
                    hist.hr_at_10.push(snap.epoch + 1, rep.hr_at_10);
                    hist.er_at_10.push(snap.epoch + 1, rep.attack.er_at_10);
                }
            };
            sim.run(Some(&mut hook))
        }
        _ => sim.run(None),
    };

    let model = MfModel::from_factors(sim.user_factors(), sim.items().clone());
    let rep = evaluator.evaluate(&model, spec.train, spec.test);
    Outcome {
        er5: rep.attack.er_at_5,
        er10: rep.attack.er_at_10,
        ndcg10: rep.attack.ndcg_at_10,
        hr10: rep.hr_at_10,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::{DatasetId, Scale};
    use fedrec_data::split::leave_one_out;

    fn spec_base<'a>(train: &'a Dataset, test: &'a TestSet) -> ExperimentSpec<'a> {
        let targets = default_targets(train, 1);
        ExperimentSpec {
            train,
            test,
            method: AttackMethod::None,
            xi: 0.05,
            rho: 0.05,
            kappa: 60,
            fed: FedConfig {
                epochs: 20,
                ..Scale::Smoke.fed_config(3)
            },
            targets,
            seed: 11,
            eval_every: None,
        }
    }

    #[test]
    fn none_attack_leaves_targets_unexposed() {
        let full = Scale::Smoke.synthetic(DatasetId::Ml100k).generate(31);
        let (train, test) = leave_one_out(&full, 5);
        let spec = spec_base(&train, &test);
        let out = run_experiment(&spec);
        assert!(
            out.er10 < 0.1,
            "cold target exposed without attack: {}",
            out.er10
        );
        assert!(out.hr10 > 0.1, "model failed to learn: HR {}", out.hr10);
    }

    #[test]
    fn fedrecattack_beats_none() {
        let full = Scale::Smoke.synthetic(DatasetId::Ml100k).generate(32);
        let (train, test) = leave_one_out(&full, 5);
        let mut spec = spec_base(&train, &test);
        spec.fed.epochs = 50;
        let none = run_experiment(&spec);
        spec.method = AttackMethod::FedRecAttack;
        let fra = run_experiment(&spec);
        assert!(
            fra.er10 > none.er10 + 0.3,
            "attack ineffective: none {} vs fra {}",
            none.er10,
            fra.er10
        );
    }

    #[test]
    fn eval_every_records_series() {
        let full = Scale::Smoke.synthetic(DatasetId::Ml100k).generate(33);
        let (train, test) = leave_one_out(&full, 5);
        let mut spec = spec_base(&train, &test);
        spec.eval_every = Some(5);
        let out = run_experiment(&spec);
        assert_eq!(out.history.hr_at_10.len(), 4, "20 epochs / every 5");
        assert_eq!(out.history.er_at_10.len(), 4);
        assert_eq!(out.history.losses.len(), 20);
    }

    #[test]
    fn malicious_count_rounds() {
        assert_eq!(malicious_count(100, 0.05), 5);
        assert_eq!(malicious_count(943, 0.03), 28);
        assert_eq!(malicious_count(10, 0.0), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let full = Scale::Smoke.synthetic(DatasetId::Ml100k).generate(34);
        let (train, test) = leave_one_out(&full, 5);
        let mut spec = spec_base(&train, &test);
        spec.method = AttackMethod::Random;
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        assert_eq!(a.er10, b.er10);
        assert_eq!(a.hr10, b.hr10);
        assert_eq!(a.history.losses, b.history.losses);
    }
}

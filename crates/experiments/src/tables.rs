//! One runner per table of the paper's evaluation section.
//!
//! Every function takes a [`Scale`] and a seed, runs the experiment grid,
//! and returns a [`Table`] whose cells show the measured value with the
//! paper's published value in parentheses.

use crate::paper_ref;
use crate::report::{fmt4, with_paper, Table};
use crate::runner::{default_targets, run_experiment, ExperimentSpec};
use crate::scale::{DatasetId, Scale};
use fedrec_baselines::AttackMethod;
use fedrec_data::split::{leave_one_out, TestSet};
use fedrec_data::Dataset;

/// Default number of target items per experiment.
pub const NUM_TARGETS: usize = 1;

fn prepare(scale: Scale, id: DatasetId, seed: u64) -> (Dataset, TestSet, Vec<u32>) {
    let full = scale.dataset(id, None, seed);
    let (train, test) = leave_one_out(&full, seed ^ 0x10);
    let targets = default_targets(&train, NUM_TARGETS);
    (train, test, targets)
}

fn base_spec<'a>(
    train: &'a Dataset,
    test: &'a TestSet,
    targets: &[u32],
    scale: Scale,
    seed: u64,
) -> ExperimentSpec<'a> {
    ExperimentSpec {
        train,
        test,
        method: AttackMethod::FedRecAttack,
        xi: 0.01,
        rho: 0.05,
        kappa: 60,
        fed: scale.fed_config(seed),
        targets: targets.to_vec(),
        seed,
        eval_every: None,
    }
}

/// Smoke-scale runs use a larger ξ so the miniature datasets (where ξ=1 %
/// of a 25-interaction user rounds to zero public interactions) still
/// exercise the attack; the sweep *shape* is what smoke scale verifies.
fn effective_xi(scale: Scale, xi: f64) -> f64 {
    match scale {
        Scale::Paper => xi,
        Scale::Smoke => (xi * 5.0).min(0.5),
    }
}

/// Table II: dataset statistics.
pub fn table2_datasets(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "Table II: sizes of datasets",
        vec![
            "Dataset",
            "#users",
            "#items",
            "#interactions",
            "Avg.",
            "sparsity",
        ],
    );
    for (i, id) in DatasetId::ALL.iter().enumerate() {
        let data = scale.dataset(*id, None, seed);
        let s = data.stats();
        let (p_name, p_users, p_items, p_inter, p_avg, p_sparse) = paper_ref::TABLE2[i];
        t.push_row(vec![
            format!("{} (paper: {p_name})", id.label()),
            format!("{} (paper {p_users})", s.num_users),
            format!("{} (paper {p_items})", s.num_items),
            format!("{} (paper {p_inter})", s.num_interactions),
            format!("{:.0} (paper {p_avg})", s.avg_interactions_per_user),
            format!("{:.2}% (paper {p_sparse}%)", s.sparsity * 100.0),
        ]);
    }
    t
}

/// Table III: impact of the proportion of public interactions ξ
/// (ML-100K, ρ=5 %).
pub fn table3_xi_sweep(scale: Scale, seed: u64) -> Table {
    let (train, test, targets) = prepare(scale, DatasetId::Ml100k, seed);
    let mut t = Table::new(
        "Table III: impact of xi on effectiveness of FedRecAttack (MovieLens-100K)",
        vec!["xi", "ER@5", "ER@10", "NDCG@10"],
    );
    for &(xi, p5, p10, pn) in &paper_ref::TABLE3_XI {
        let mut spec = base_spec(&train, &test, &targets, scale, seed);
        spec.xi = effective_xi(scale, xi);
        let out = run_experiment(&spec);
        t.push_row(vec![
            format!("{}%", xi * 100.0),
            with_paper(out.er5, Some(p5)),
            with_paper(out.er10, Some(p10)),
            with_paper(out.ndcg10, Some(pn)),
        ]);
    }
    t
}

/// Table IV: impact of the proportion of malicious users ρ (ML-100K,
/// ξ=1 %).
pub fn table4_rho_sweep(scale: Scale, seed: u64) -> Table {
    let (train, test, targets) = prepare(scale, DatasetId::Ml100k, seed);
    let mut t = Table::new(
        "Table IV: impact of rho on effectiveness of FedRecAttack (MovieLens-100K)",
        vec!["rho", "ER@5", "ER@10", "NDCG@10"],
    );
    for &(rho, p5, p10, pn) in &paper_ref::TABLE4_RHO {
        let mut spec = base_spec(&train, &test, &targets, scale, seed);
        spec.rho = rho;
        spec.xi = effective_xi(scale, 0.01);
        let out = run_experiment(&spec);
        t.push_row(vec![
            format!("{}%", rho * 100.0),
            with_paper(out.er5, Some(p5)),
            with_paper(out.er10, Some(p10)),
            with_paper(out.ndcg10, Some(pn)),
        ]);
    }
    t
}

/// Table V: impact of the row budget κ (ML-100K).
pub fn table5_kappa_sweep(scale: Scale, seed: u64) -> Table {
    let (train, test, targets) = prepare(scale, DatasetId::Ml100k, seed);
    let mut t = Table::new(
        "Table V: impact of kappa on effectiveness of FedRecAttack (MovieLens-100K)",
        vec!["kappa", "ER@5", "ER@10", "NDCG@10"],
    );
    for &(kappa, p5, p10, pn) in &paper_ref::TABLE5_KAPPA {
        let mut spec = base_spec(&train, &test, &targets, scale, seed);
        spec.kappa = kappa;
        spec.xi = effective_xi(scale, 0.01);
        let out = run_experiment(&spec);
        t.push_row(vec![
            format!("{kappa}"),
            with_paper(out.er5, Some(p5)),
            with_paper(out.er10, Some(p10)),
            with_paper(out.ndcg10, Some(pn)),
        ]);
    }
    t
}

/// Table VI: ER@10 of FedRecAttack vs data-poisoning attacks P1/P2
/// (ML-100K; P1/P2 get full interaction knowledge).
pub fn table6_data_poisoning(scale: Scale, seed: u64) -> Table {
    let (train, test, targets) = prepare(scale, DatasetId::Ml100k, seed);
    let rhos = [0.005, 0.01, 0.03, 0.05];
    let mut t = Table::new(
        "Table VI: ER@10 of FedRecAttack and data poisoning attacks (MovieLens-100K)",
        vec!["Attack", "rho=0.5%", "rho=1%", "rho=3%", "rho=5%"],
    );
    let methods = [
        AttackMethod::None,
        AttackMethod::P1,
        AttackMethod::P2,
        AttackMethod::FedRecAttack,
    ];
    for (mi, method) in methods.iter().enumerate() {
        let mut row = vec![method.label().to_string()];
        for (ri, &rho) in rhos.iter().enumerate() {
            let mut spec = base_spec(&train, &test, &targets, scale, seed);
            spec.method = *method;
            spec.rho = rho;
            spec.xi = effective_xi(scale, 0.01);
            let out = run_experiment(&spec);
            row.push(with_paper(out.er10, Some(paper_ref::TABLE6_ER10[mi].1[ri])));
        }
        t.push_row(row);
    }
    t
}

/// Table VII: the main effectiveness comparison — three datasets ×
/// {None, Random, Bandwagon, Popular, FedRecAttack} × ρ ∈ {3, 5, 10} %.
pub fn table7_effectiveness(scale: Scale, seed: u64) -> Table {
    let rhos = [0.03, 0.05, 0.10];
    let methods = [
        AttackMethod::None,
        AttackMethod::Random,
        AttackMethod::Bandwagon,
        AttackMethod::Popular,
        AttackMethod::FedRecAttack,
    ];
    let blocks: [(&str, DatasetId, &paper_ref::Table7Block); 3] = [
        (
            "MovieLens-100K",
            DatasetId::Ml100k,
            &paper_ref::TABLE7_ML100K,
        ),
        ("MovieLens-1M", DatasetId::Ml1m, &paper_ref::TABLE7_ML1M),
        ("Steam-200K", DatasetId::Steam200k, &paper_ref::TABLE7_STEAM),
    ];
    let mut t = Table::new(
        "Table VII: effectiveness of different attacks with different proportions of malicious users",
        vec![
            "Dataset", "Attack", "rho", "ER@5", "ER@10", "NDCG@10",
        ],
    );
    for (label, id, block) in blocks {
        let (train, test, targets) = prepare(scale, id, seed);
        for (mi, method) in methods.iter().enumerate() {
            for (ri, &rho) in rhos.iter().enumerate() {
                let mut spec = base_spec(&train, &test, &targets, scale, seed);
                spec.method = *method;
                spec.rho = rho;
                spec.xi = effective_xi(scale, 0.01);
                let out = run_experiment(&spec);
                let (p5, p10, pn) = block[mi].1[ri];
                t.push_row(vec![
                    label.to_string(),
                    method.label().to_string(),
                    format!("{}%", rho * 100.0),
                    with_paper(out.er5, Some(p5)),
                    with_paper(out.er10, Some(p10)),
                    with_paper(out.ndcg10, Some(pn)),
                ]);
            }
        }
    }
    t
}

/// Table VIII: model-poisoning comparison on ML-1M — HR@10 and ER@5 for
/// {None, P3, P4, EB, PipAttack, FedRecAttack} × ρ ∈ {10, 20, 30, 40} %.
pub fn table8_model_poisoning(scale: Scale, seed: u64) -> Table {
    let (train, test, targets) = prepare(scale, DatasetId::Ml1m, seed);
    let rhos = [0.10, 0.20, 0.30, 0.40];
    let methods = [
        AttackMethod::None,
        AttackMethod::P3,
        AttackMethod::P4,
        AttackMethod::ExplicitBoost,
        AttackMethod::PipAttack,
        AttackMethod::FedRecAttack,
    ];
    let mut t = Table::new(
        "Table VIII: HR@10 and ER@5 of FedRecAttack and other model poisoning attacks (MovieLens-1M)",
        vec!["Attack", "rho", "HR@10", "ER@5"],
    );
    for (mi, method) in methods.iter().enumerate() {
        for (ri, &rho) in rhos.iter().enumerate() {
            let mut spec = base_spec(&train, &test, &targets, scale, seed);
            spec.method = *method;
            spec.rho = rho;
            spec.xi = effective_xi(scale, 0.01);
            let out = run_experiment(&spec);
            let (phr, per) = paper_ref::TABLE8[mi].1[ri];
            t.push_row(vec![
                method.label().to_string(),
                format!("{}%", rho * 100.0),
                with_paper(out.hr10, Some(phr)),
                with_paper(out.er5, Some(per)),
            ]);
        }
    }
    t
}

/// Table IX: the ablation — FedRecAttack with ξ=1 % vs ξ=0 on all three
/// datasets.
pub fn table9_ablation(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "Table IX: effectiveness of FedRecAttack with & without public interactions",
        vec!["Dataset", "xi", "ER@5", "ER@10", "NDCG@10"],
    );
    for (i, id) in DatasetId::ALL.iter().enumerate() {
        let (train, test, targets) = prepare(scale, *id, seed);
        let (_, p5, p10, pn) = paper_ref::TABLE9_XI1[i];
        for &(xi, paper_vals) in &[(0.01, Some((p5, p10, pn))), (0.0, Some((0.0, 0.0, 0.0)))] {
            let mut spec = base_spec(&train, &test, &targets, scale, seed);
            spec.xi = if xi == 0.0 {
                0.0
            } else {
                effective_xi(scale, xi)
            };
            let out = run_experiment(&spec);
            let (q5, q10, qn) = paper_vals.expect("present");
            t.push_row(vec![
                id.label().to_string(),
                format!("{}%", xi * 100.0),
                with_paper(out.er5, Some(q5)),
                with_paper(out.er10, Some(q10)),
                with_paper(out.ndcg10, Some(qn)),
            ]);
        }
    }
    t
}

/// Extension table: FedRecAttack against byzantine-robust aggregation and
/// detection (the paper's §VI future work). Not a paper table — an
/// ablation this repository adds.
pub fn extension_defenses(scale: Scale, seed: u64) -> Table {
    use fedrec_baselines::registry::{build_adversary, AttackEnv};
    use fedrec_defense::{CoordinateMedian, Krum, NormBound, TrimmedMean};
    use fedrec_federated::server::{Aggregator, SumAggregator};
    use fedrec_federated::Simulation;
    use fedrec_recsys::eval::Evaluator;
    use fedrec_recsys::MfModel;

    let (train, test, targets) = prepare(scale, DatasetId::Ml100k, seed);
    let fed = scale.fed_config(seed);
    let rho = 0.05;
    let num_malicious = crate::runner::malicious_count(train.num_users(), rho);
    let xi = effective_xi(scale, 0.01);

    let aggregators: Vec<(&str, Box<dyn Aggregator>)> = vec![
        ("sum (no defense)", Box::new(SumAggregator)),
        (
            "krum",
            Box::new(Krum {
                assumed_byzantine: num_malicious,
            }),
        ),
        ("trimmed-mean", Box::new(TrimmedMean { trim_fraction: 0.1 })),
        ("median", Box::new(CoordinateMedian)),
        ("norm-bound", Box::new(NormBound { factor: 3.0 })),
    ];

    let mut t = Table::new(
        "Extension: FedRecAttack vs byzantine-robust aggregation (MovieLens-100K, rho=5%)",
        vec!["Aggregation", "ER@10", "HR@10"],
    );
    for (name, agg) in aggregators {
        let env = AttackEnv::over_dataset(&train, &targets)
            .malicious(num_malicious)
            .kappa(60)
            .k(fed.k)
            .seed(seed ^ 0xA7)
            .public(xi, seed ^ 0xD1);
        let adversary = build_adversary(AttackMethod::FedRecAttack, &env);
        let mut sim = Simulation::with_aggregator(&train, fed, adversary, num_malicious, agg);
        sim.run(None);
        let evaluator = Evaluator::new(&train, &test, &targets, seed ^ 0xE7);
        let model = MfModel::from_factors(sim.user_factors(), sim.items().clone());
        let rep = evaluator.evaluate(&model, &train, &test);
        t.push_row(vec![
            name.to_string(),
            fmt4(rep.attack.er_at_10),
            fmt4(rep.hr_at_10),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fast shared check: a table renders with the right shape.
    fn assert_table(t: &Table, rows: usize, cols: usize) {
        assert_eq!(t.header.len(), cols, "{}", t.title);
        assert_eq!(t.rows.len(), rows, "{}", t.title);
        assert!(!t.to_markdown().is_empty());
        assert!(!t.to_csv().is_empty());
    }

    #[test]
    fn table2_shape_and_content() {
        let t = table2_datasets(Scale::Smoke, 1);
        assert_table(&t, 3, 6);
        assert!(t.rows[0][0].contains("MovieLens-100K"));
    }

    #[test]
    fn table3_runs_at_smoke_scale() {
        let t = table3_xi_sweep(Scale::Smoke, 1);
        assert_table(&t, 5, 4);
    }

    #[test]
    fn table9_contains_zero_xi_rows() {
        let t = table9_ablation(Scale::Smoke, 1);
        assert_table(&t, 6, 5);
        assert!(t.rows.iter().any(|r| r[1] == "0%"));
    }

    // Tables IV–VIII are exercised by the integration suite and benches;
    // each is a strict superset of the plumbing tested above.
}

//! Property-based tests for dataset structures and views.

use fedrec_data::public::PublicView;
use fedrec_data::split::leave_one_out;
use fedrec_data::synthetic::SyntheticConfig;
use fedrec_data::Dataset;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = SyntheticConfig> {
    (10usize..80, 20usize..150, 0.2f64..1.4, 0.2f64..1.2)
        .prop_flat_map(|(users, items, zipf, activity)| {
            // Stay inside the generator's per-user degree cap (60 % of the
            // catalog), which is its documented domain.
            let max_degree = ((items as f64) * 0.6) as usize;
            let max_inter = (users * max_degree).max(users + 1);
            (
                Just(users),
                Just(items),
                users..max_inter,
                Just(zipf),
                Just(activity),
            )
        })
        .prop_map(|(users, items, inter, zipf, activity)| SyntheticConfig {
            name: "prop",
            num_users: users,
            num_items: items,
            num_interactions: inter,
            zipf_exponent: zipf,
            user_activity_exponent: activity,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The generator honors every configured count for arbitrary shapes.
    #[test]
    fn synthetic_counts_hold(cfg in config_strategy(), seed in 0u64..100) {
        let d = cfg.generate(seed);
        prop_assert_eq!(d.num_users(), cfg.num_users);
        prop_assert_eq!(d.num_items(), cfg.num_items);
        prop_assert_eq!(d.num_interactions(), cfg.num_interactions);
        for u in 0..d.num_users() {
            prop_assert!(d.user_degree(u) >= 1);
            prop_assert!(d.user_degree(u) < d.num_items(), "user {u} saturated");
            let items = d.user_items(u);
            prop_assert!(items.windows(2).all(|w| w[0] < w[1]), "unsorted/dup");
        }
    }

    /// Leave-one-out conserves interactions and never leaks.
    #[test]
    fn loo_split_invariants(cfg in config_strategy(), seed in 0u64..100) {
        let d = cfg.generate(seed);
        let (train, test) = leave_one_out(&d, seed ^ 0xBEEF);
        let held = test.iter().filter(|t| t.is_some()).count();
        prop_assert_eq!(train.num_interactions() + held, d.num_interactions());
        for (u, t) in test.iter().enumerate() {
            if let Some(item) = t {
                prop_assert!(d.contains(u, *item));
                prop_assert!(!train.contains(u, *item));
            } else {
                prop_assert!(d.user_degree(u) < 2);
            }
        }
    }

    /// Public views are subsets with per-user proportional sizes.
    #[test]
    fn public_view_invariants(
        cfg in config_strategy(),
        xi in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        let d = cfg.generate(seed);
        let v = PublicView::sample(&d, xi, seed ^ 0xFACE);
        prop_assert!(v.num_interactions() <= d.num_interactions());
        for u in 0..d.num_users() {
            let expect = ((d.user_degree(u) as f64) * xi).round() as usize;
            prop_assert_eq!(v.user_items(u).len(), expect.min(d.user_degree(u)));
            for &item in v.user_items(u) {
                prop_assert!(d.contains(u, item));
            }
        }
    }

    /// Popularity totals match interaction totals and the ordering is
    /// consistent.
    #[test]
    fn popularity_is_consistent(cfg in config_strategy(), seed in 0u64..100) {
        let d = cfg.generate(seed);
        let pop = d.item_popularity();
        let total: u64 = pop.iter().map(|&x| x as u64).sum();
        prop_assert_eq!(total as usize, d.num_interactions());
        let order = d.items_by_popularity();
        for w in order.windows(2) {
            prop_assert!(pop[w[0] as usize] >= pop[w[1] as usize]);
        }
        let cold = d.coldest_items(3.min(d.num_items()));
        let max_cold: u32 = cold.iter().map(|&v| pop[v as usize]).max().unwrap();
        // Every cold item is at most as popular as every item NOT chosen
        // as cold... weaker but checkable: min over full catalog equals
        // min over cold picks.
        let global_min = pop.iter().copied().min().unwrap();
        prop_assert!(cold.iter().any(|&v| pop[v as usize] == global_min));
        let _ = max_cold;
    }

    /// Injecting fake users preserves the original block untouched.
    #[test]
    fn injected_users_are_appended(cfg in config_strategy(), seed in 0u64..50) {
        let d = cfg.generate(seed);
        let fake = vec![vec![0u32, 1], vec![2u32]];
        let d2 = d.with_injected_users(&fake);
        prop_assert_eq!(d2.num_users(), d.num_users() + 2);
        for u in 0..d.num_users() {
            prop_assert_eq!(d2.user_items(u), d.user_items(u));
        }
        prop_assert_eq!(d2.user_items(d.num_users()), &[0u32, 1][..]);
    }
}

/// Deterministic regression: a dataset round-trips through tuples.
#[test]
fn dataset_tuple_roundtrip() {
    let d = SyntheticConfig::smoke().generate(5);
    let tuples: Vec<(u32, u32)> = d.iter().collect();
    let d2 = Dataset::from_tuples(d.num_users(), d.num_items(), tuples);
    assert_eq!(d, d2);
}

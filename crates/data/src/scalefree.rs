//! Scale-free synthetic populations, generated shard by shard.
//!
//! The Table II generators in [`crate::synthetic`] materialize the whole
//! interaction set up front — fine at MovieLens scale, hopeless for the
//! million-user populations the scaling roadmap targets. This module
//! generates a power-law population *lazily per user-shard*: each user's
//! degree and item set are a pure function of `(config, seed, user)`, so a
//! shard of CSR rows can be produced on first access (and dropped-in-place
//! never), and a 1M-user / 100k-item dataset never exists as one
//! allocation — untouched shards cost one empty [`OnceLock`].
//!
//! Statistically the population is scale-free on both sides, matching what
//! large platforms observe: user degrees follow a truncated Pareto law
//! (`P(d > x) ∝ x^{-(a-1)}`, i.e. density exponent `a`), item popularity
//! follows the same Zipf law the Table II generators use.
//!
//! Granularity trade-off: faulting in *one* user generates and retains
//! its whole CSR shard (`shard_rows` users), because
//! [`InteractionSource::user_items`] hands out `&[u32]` slices that need
//! contiguous backing. With scattered participants this over-generates by
//! up to a `shard_rows` factor — bounded by the full dataset size, and
//! amortized as soon as repeated sampling revisits shards (at the default
//! fractions every shard is warm within a few rounds). Since each user's
//! stream is a pure function of `(seed, user)`, a per-user generation
//! path with no shard retention is possible and tracked as a ROADMAP
//! item; shrink [`ScaleFreeConfig::shard_rows`] in the meantime if
//! first-touch cost matters more than per-shard overhead.

use crate::dataset::InteractionSource;
use fedrec_linalg::rng::ZipfTable;
use fedrec_linalg::SeededRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Configuration of a scale-free population.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleFreeConfig {
    /// Human-readable name, used in reports.
    pub name: &'static str,
    /// Number of users `n`.
    pub num_users: usize,
    /// Number of items `m`.
    pub num_items: usize,
    /// Minimum interactions per user (the Pareto scale `x_m`).
    pub min_degree: usize,
    /// Degree-density exponent `a` (`p(d) ∝ d^{-a}`, `a > 2` keeps the
    /// mean finite; larger = lighter tail).
    pub degree_exponent: f64,
    /// Hard per-user degree cap (must leave negatives: `≤ m / 2`).
    pub max_degree: usize,
    /// Zipf exponent of item popularity.
    pub zipf_exponent: f64,
    /// Users per lazily-generated CSR shard.
    pub shard_rows: usize,
}

impl ScaleFreeConfig {
    /// The headline scale target: one million users over a 100k-item
    /// catalog (mean degree ≈ 3·`min_degree` at `a = 2.5`).
    pub fn million() -> Self {
        Self {
            name: "scalefree-1m",
            num_users: 1_000_000,
            num_items: 100_000,
            min_degree: 4,
            degree_exponent: 2.5,
            max_degree: 512,
            zipf_exponent: 1.05,
            shard_rows: 4_096,
        }
    }

    /// The CI-sized shrink of [`ScaleFreeConfig::million`]: 50k users,
    /// same shape, seconds instead of minutes.
    pub fn smoke_50k() -> Self {
        Self {
            name: "scalefree-50k",
            num_users: 50_000,
            num_items: 5_000,
            min_degree: 4,
            degree_exponent: 2.5,
            max_degree: 256,
            zipf_exponent: 1.05,
            shard_rows: 1_024,
        }
    }

    /// A miniature for unit tests.
    pub fn tiny() -> Self {
        Self {
            name: "scalefree-tiny",
            num_users: 600,
            num_items: 300,
            min_degree: 2,
            degree_exponent: 2.5,
            max_degree: 40,
            zipf_exponent: 1.0,
            shard_rows: 128,
        }
    }

    /// Validate ranges.
    pub fn validate(&self) {
        assert!(self.num_users > 0 && self.num_items > 0);
        assert!(self.min_degree >= 1, "min_degree must be at least 1");
        assert!(
            self.min_degree <= self.max_degree,
            "min_degree exceeds max_degree"
        );
        assert!(
            self.max_degree <= self.num_items / 2,
            "max_degree {} must leave negatives (≤ m/2 = {})",
            self.max_degree,
            self.num_items / 2
        );
        assert!(
            self.degree_exponent > 2.0,
            "degree_exponent must exceed 2 for a finite mean degree"
        );
        assert!(self.zipf_exponent >= 0.0 && self.zipf_exponent.is_finite());
        assert!(self.shard_rows > 0, "shard_rows must be positive");
    }

    /// Build the lazily-sharded dataset. Construction is `O(m)` (the Zipf
    /// table and rank permutation); no interaction is generated until a
    /// user's shard is first read. Deterministic in `(config, seed)`.
    pub fn generate(&self, seed: u64) -> ScaleFreeDataset {
        self.validate();
        let mut rng = SeededRng::new(seed ^ 0x5CA1_EF0E);
        let mut rank_to_item: Vec<u32> = (0..self.num_items as u32).collect();
        rng.shuffle(&mut rank_to_item);
        let num_shards = self.num_users.div_ceil(self.shard_rows);
        ScaleFreeDataset {
            cfg: self.clone(),
            seed,
            zipf: ZipfTable::new(self.num_items, self.zipf_exponent),
            rank_to_item,
            shards: (0..num_shards).map(|_| OnceLock::new()).collect(),
            shards_generated: AtomicUsize::new(0),
        }
    }
}

/// One generated CSR block of `shard_rows` (or fewer, at the tail) users.
#[derive(Debug)]
struct DatasetShard {
    /// Local CSR offsets (`ptr[i]..ptr[i+1]` indexes local user `i`).
    ptr: Vec<usize>,
    /// Concatenated sorted item ids.
    items: Vec<u32>,
}

/// A scale-free population whose CSR shards are generated on first access.
///
/// Thread-safe: shards are raced through [`OnceLock`], so concurrent
/// evaluation workers can fault shards in without coordination.
#[derive(Debug)]
pub struct ScaleFreeDataset {
    cfg: ScaleFreeConfig,
    seed: u64,
    zipf: ZipfTable,
    rank_to_item: Vec<u32>,
    shards: Vec<OnceLock<DatasetShard>>,
    shards_generated: AtomicUsize,
}

impl ScaleFreeDataset {
    /// The generating configuration.
    pub fn config(&self) -> &ScaleFreeConfig {
        &self.cfg
    }

    /// Total number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards generated so far — the laziness counter.
    pub fn shards_generated(&self) -> usize {
        self.shards_generated.load(Ordering::Relaxed)
    }

    /// Interactions materialized so far (sum over generated shards).
    pub fn interactions_generated(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|s| s.get())
            .map(|s| s.items.len())
            .sum()
    }

    /// Force-generate every shard (tests and full-population stats).
    pub fn materialize_all(&self) {
        for si in 0..self.shards.len() {
            let _ = self.shard(si);
        }
    }

    fn shard(&self, si: usize) -> &DatasetShard {
        self.shards[si].get_or_init(|| {
            self.shards_generated.fetch_add(1, Ordering::Relaxed);
            self.build_shard(si)
        })
    }

    /// Degree of user `u`: truncated Pareto draw from the user's own
    /// stream (independent of every other user, hence shard-order-free).
    fn degree(&self, rng: &mut SeededRng) -> usize {
        let tail = self.cfg.degree_exponent - 1.0;
        let u01 = (1.0 - rng.uniform_f64()).max(1e-12);
        let d = self.cfg.min_degree as f64 * u01.powf(-1.0 / tail);
        (d as usize).clamp(self.cfg.min_degree, self.cfg.max_degree)
    }

    fn build_shard(&self, si: usize) -> DatasetShard {
        let start = si * self.cfg.shard_rows;
        let rows = (self.cfg.num_users - start).min(self.cfg.shard_rows);
        let mut ptr = Vec::with_capacity(rows + 1);
        ptr.push(0usize);
        let mut items: Vec<u32> = Vec::new();
        let mut user_items: Vec<u32> = Vec::new();
        for local in 0..rows {
            let u = start + local;
            // Every user owns an independent stream derived from (seed, u),
            // so a shard's contents do not depend on generation order.
            let mut rng =
                SeededRng::new(self.seed ^ (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let want = self.degree(&mut rng);
            user_items.clear();
            // Zipf-popular draws with rejection; the degree cap is ≤ m/2,
            // so collisions stay cheap. A bounded attempt budget keeps the
            // loop total even for adversarial configs, topping up from
            // uniform draws (still seeded, still deterministic).
            let mut attempts = 0usize;
            while user_items.len() < want {
                let v = if attempts < 50 * want {
                    self.rank_to_item[self.zipf.sample(&mut rng)]
                } else {
                    rng.below(self.cfg.num_items) as u32
                };
                attempts += 1;
                if let Err(pos) = user_items.binary_search(&v) {
                    user_items.insert(pos, v);
                }
            }
            items.extend_from_slice(&user_items);
            ptr.push(items.len());
        }
        DatasetShard { ptr, items }
    }
}

impl InteractionSource for ScaleFreeDataset {
    fn num_users(&self) -> usize {
        self.cfg.num_users
    }

    fn num_items(&self) -> usize {
        self.cfg.num_items
    }

    fn user_items(&self, u: usize) -> &[u32] {
        assert!(u < self.cfg.num_users, "user {u} out of range");
        let shard = self.shard(u / self.cfg.shard_rows);
        let local = u % self.cfg.shard_rows;
        &shard.items[shard.ptr[local]..shard.ptr[local + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_lazy_per_shard() {
        let d = ScaleFreeConfig::tiny().generate(1);
        assert_eq!(d.shards_generated(), 0);
        assert_eq!(d.interactions_generated(), 0);
        let _ = d.user_items(0);
        assert_eq!(d.shards_generated(), 1, "one shard faulted in");
        let _ = d.user_items(5); // same shard
        assert_eq!(d.shards_generated(), 1);
        let _ = d.user_items(d.num_users() - 1); // tail shard
        assert_eq!(d.shards_generated(), 2);
        assert!(d.interactions_generated() > 0);
        assert_eq!(d.num_shards(), 600usize.div_ceil(128));
    }

    #[test]
    fn users_are_deterministic_and_order_independent() {
        let cfg = ScaleFreeConfig::tiny();
        let a = cfg.generate(9);
        let b = cfg.generate(9);
        // Touch b's shards in reverse order; contents must not care.
        for u in (0..a.num_users()).rev() {
            let _ = b.user_items(u);
        }
        for u in 0..a.num_users() {
            assert_eq!(a.user_items(u), b.user_items(u), "user {u} diverged");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ScaleFreeConfig::tiny();
        let a = cfg.generate(1);
        let b = cfg.generate(2);
        let diff = (0..cfg.num_users).any(|u| a.user_items(u) != b.user_items(u));
        assert!(diff, "seed must matter");
    }

    #[test]
    fn rows_are_sorted_distinct_in_range_and_degree_bounded() {
        let d = ScaleFreeConfig::tiny().generate(4);
        let cfg = d.config().clone();
        for u in 0..cfg.num_users {
            let row = d.user_items(u);
            assert!(row.len() >= cfg.min_degree && row.len() <= cfg.max_degree);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "user {u} unsorted");
            assert!(row.iter().all(|&v| (v as usize) < cfg.num_items));
            assert_eq!(d.user_degree(u), row.len());
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let d = ScaleFreeConfig::tiny().generate(7);
        d.materialize_all();
        let degrees: Vec<usize> = (0..d.num_users()).map(|u| d.user_degree(u)).collect();
        let at_min = degrees.iter().filter(|&&x| x == 2).count();
        let heavy = degrees.iter().filter(|&&x| x >= 10).count();
        // Pareto(a=2.5, xm=2): ~55% mass at the floor, ~9% beyond 5·xm.
        assert!(at_min > d.num_users() / 3, "floor mass too small: {at_min}");
        assert!(heavy > 0, "no heavy users at all");
        let max = *degrees.iter().max().expect("non-empty");
        assert!(max > 4 * 2, "tail never stretched: max degree {max}");
    }

    #[test]
    fn item_popularity_is_skewed() {
        let d = ScaleFreeConfig::tiny().generate(3);
        d.materialize_all();
        let mut pop = vec![0u32; d.num_items()];
        for u in 0..d.num_users() {
            for &v in d.user_items(u) {
                pop[v as usize] += 1;
            }
        }
        pop.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = pop.iter().map(|&x| x as u64).sum();
        let top_decile: u64 = pop[..pop.len() / 10].iter().map(|&x| x as u64).sum();
        assert!(
            top_decile as f64 > 0.3 * total as f64,
            "top 10% of items should hold >30% of interactions, got {}",
            top_decile as f64 / total as f64
        );
    }

    #[test]
    fn million_config_validates_without_generating() {
        // Construction must be O(m), not O(n·degree): just build it.
        let d = ScaleFreeConfig::million().generate(42);
        assert_eq!(d.num_users(), 1_000_000);
        assert_eq!(d.num_items(), 100_000);
        assert_eq!(d.shards_generated(), 0);
        ScaleFreeConfig::smoke_50k().validate();
    }

    #[test]
    #[should_panic(expected = "max_degree")]
    fn rejects_degree_cap_beyond_half_catalog() {
        ScaleFreeConfig {
            max_degree: 200,
            num_items: 300,
            ..ScaleFreeConfig::tiny()
        }
        .validate();
    }
}

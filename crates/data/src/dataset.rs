//! Implicit-feedback interaction datasets.
//!
//! A [`Dataset`] is the training set `D ⊆ U × V` of §III-A, stored in CSR
//! layout: `user_ptr[i]..user_ptr[i+1]` indexes the sorted item ids user
//! `u_i` has interacted with (`V_i⁺`). All ratings/playtimes are collapsed
//! to implicit feedback and duplicates dropped, exactly as the paper's
//! preprocessing does.

/// Read access to a population of per-user interaction sets.
///
/// The federated layers only ever need three questions answered — how many
/// users, how many items, which items has user `u` interacted with — so
/// they are written against this trait instead of the concrete [`Dataset`].
/// That lets the same round loop run over an eager CSR matrix (small
/// datasets) or a sharded, lazily-generated population
/// ([`crate::scalefree::ScaleFreeDataset`]) where a million-user
/// interaction set never exists as one allocation.
pub trait InteractionSource {
    /// Number of users `n`.
    fn num_users(&self) -> usize;

    /// Number of items `m`.
    fn num_items(&self) -> usize;

    /// Sorted item ids user `u` has interacted with (`V_u⁺`).
    fn user_items(&self, u: usize) -> &[u32];

    /// Number of interactions of user `u` (`|V_u⁺|`).
    fn user_degree(&self, u: usize) -> usize {
        self.user_items(u).len()
    }

    /// Interaction count per item over the whole population.
    ///
    /// The default implementation sweeps every user, so on a lazily
    /// generated source ([`crate::scalefree::ScaleFreeDataset`]) it
    /// materializes the full population — `O(|D|)` work, the honest cost
    /// of population-wide side information. Attacks that assume item
    /// popularity as prior knowledge (Bandwagon, Popular, PipAttack) pay
    /// it once per construction through the lazy
    /// `AttackEnv` cache; everything else never triggers it.
    fn item_popularity(&self) -> Vec<u32> {
        let mut pop = vec![0u32; self.num_items()];
        for u in 0..self.num_users() {
            for &v in self.user_items(u) {
                pop[v as usize] += 1;
            }
        }
        pop
    }
}

impl InteractionSource for Dataset {
    fn num_users(&self) -> usize {
        Dataset::num_users(self)
    }

    fn num_items(&self) -> usize {
        Dataset::num_items(self)
    }

    fn user_items(&self, u: usize) -> &[u32] {
        Dataset::user_items(self, u)
    }

    fn user_degree(&self, u: usize) -> usize {
        Dataset::user_degree(self, u)
    }

    fn item_popularity(&self) -> Vec<u32> {
        Dataset::item_popularity(self)
    }
}

/// A deduplicated implicit-feedback dataset in CSR layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    num_users: usize,
    num_items: usize,
    user_ptr: Vec<usize>,
    item_ids: Vec<u32>,
}

/// Summary statistics for a dataset (the columns of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of users `n`.
    pub num_users: usize,
    /// Number of items `m`.
    pub num_items: usize,
    /// Number of unique user-item interactions `|D|`.
    pub num_interactions: usize,
    /// Average interactions per user (the paper's "Avg." column).
    pub avg_interactions_per_user: f64,
    /// `1 - |D| / (n·m)`, as a fraction in `[0, 1]`.
    pub sparsity: f64,
}

impl Dataset {
    /// Build a dataset from `(user, item)` tuples.
    ///
    /// Duplicates are dropped (the paper: "we drop the duplicate
    /// interactions") and per-user item lists are sorted. Panics if any id
    /// is out of range.
    pub fn from_tuples(
        num_users: usize,
        num_items: usize,
        tuples: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut per_user: Vec<Vec<u32>> = vec![Vec::new(); num_users];
        for (u, v) in tuples {
            assert!(
                (u as usize) < num_users,
                "user id {u} out of range {num_users}"
            );
            assert!(
                (v as usize) < num_items,
                "item id {v} out of range {num_items}"
            );
            per_user[u as usize].push(v);
        }
        let mut user_ptr = Vec::with_capacity(num_users + 1);
        let mut item_ids = Vec::new();
        user_ptr.push(0);
        for items in per_user.iter_mut() {
            items.sort_unstable();
            items.dedup();
            item_ids.extend_from_slice(items);
            user_ptr.push(item_ids.len());
        }
        Self {
            num_users,
            num_items,
            user_ptr,
            item_ids,
        }
    }

    /// Number of users `n`.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items `m`.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of unique interactions `|D|`.
    #[inline]
    pub fn num_interactions(&self) -> usize {
        self.item_ids.len()
    }

    /// Sorted item ids user `u` has interacted with (`V_u⁺`).
    #[inline]
    pub fn user_items(&self, u: usize) -> &[u32] {
        &self.item_ids[self.user_ptr[u]..self.user_ptr[u + 1]]
    }

    /// Number of interactions of user `u` (`|V_u⁺|`).
    #[inline]
    pub fn user_degree(&self, u: usize) -> usize {
        self.user_ptr[u + 1] - self.user_ptr[u]
    }

    /// Whether `(u, v) ∈ D`.
    #[inline]
    pub fn contains(&self, u: usize, v: u32) -> bool {
        self.user_items(u).binary_search(&v).is_ok()
    }

    /// Iterate all `(user, item)` interactions.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_users)
            .flat_map(move |u| self.user_items(u).iter().map(move |&v| (u as u32, v)))
    }

    /// Interaction count per item (item "popularity", used by the
    /// Bandwagon/Popular baselines and by PipAttack's side information).
    pub fn item_popularity(&self) -> Vec<u32> {
        let mut pop = vec![0u32; self.num_items];
        for &v in &self.item_ids {
            pop[v as usize] += 1;
        }
        pop
    }

    /// Item ids sorted by descending popularity (ties by ascending id, so
    /// the ordering is deterministic).
    pub fn items_by_popularity(&self) -> Vec<u32> {
        let pop = self.item_popularity();
        let mut ids: Vec<u32> = (0..self.num_items as u32).collect();
        ids.sort_by_key(|&v| (std::cmp::Reverse(pop[v as usize]), v));
        ids
    }

    /// The `count` least-popular items with zero or minimal interactions.
    ///
    /// The paper attacks "target items" that start unexposed (ER@K = 0 under
    /// no attack); picking cold items reproduces that starting condition.
    pub fn coldest_items(&self, count: usize) -> Vec<u32> {
        let mut ids = self.items_by_popularity();
        ids.reverse();
        ids.truncate(count);
        ids.sort_unstable();
        ids
    }

    /// Summary statistics (Table II columns).
    pub fn stats(&self) -> DatasetStats {
        let n = self.num_users;
        let m = self.num_items;
        let d = self.num_interactions();
        DatasetStats {
            num_users: n,
            num_items: m,
            num_interactions: d,
            avg_interactions_per_user: if n == 0 { 0.0 } else { d as f64 / n as f64 },
            sparsity: if n == 0 || m == 0 {
                1.0
            } else {
                1.0 - d as f64 / (n as f64 * m as f64)
            },
        }
    }

    /// Build a new dataset with extra users appended (each given the listed
    /// item set). Used by data-poisoning baselines that inject fake users
    /// into the training data.
    pub fn with_injected_users(&self, fake_profiles: &[Vec<u32>]) -> Dataset {
        let tuples = self
            .iter()
            .chain(fake_profiles.iter().enumerate().flat_map(|(i, items)| {
                let fake_u = (self.num_users + i) as u32;
                items.iter().map(move |&v| (fake_u, v))
            }))
            .collect::<Vec<_>>();
        Dataset::from_tuples(self.num_users + fake_profiles.len(), self.num_items, tuples)
    }

    /// Materialize a dense CSR snapshot of any interaction source.
    ///
    /// This is the bridge the *full-knowledge* data-poisoning baselines
    /// (P1/P2) use when an experiment runs on a lazily generated
    /// population: their threat model grants the attacker the entire
    /// interaction matrix, so the honest cost of that assumption at
    /// population scale is one `O(|D|)` sweep. Rows come back exactly as
    /// the source reports them (already sorted and deduplicated per the
    /// [`InteractionSource`] contract), so for a `Dataset` source this is
    /// an identity copy.
    pub fn from_source<D: InteractionSource + ?Sized>(source: &D) -> Dataset {
        let n = source.num_users();
        let mut user_ptr = Vec::with_capacity(n + 1);
        let mut item_ids = Vec::new();
        user_ptr.push(0);
        for u in 0..n {
            let row = source.user_items(u);
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "unsorted row {u}");
            item_ids.extend_from_slice(row);
            user_ptr.push(item_ids.len());
        }
        Self {
            num_users: n,
            num_items: source.num_items(),
            user_ptr,
            item_ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::from_tuples(3, 5, vec![(0, 1), (0, 3), (1, 0), (1, 1), (1, 1), (2, 4)])
    }

    #[test]
    fn dedup_and_sorted() {
        let d = tiny();
        assert_eq!(d.num_interactions(), 5, "duplicate (1,1) dropped");
        assert_eq!(d.user_items(0), &[1, 3]);
        assert_eq!(d.user_items(1), &[0, 1]);
        assert_eq!(d.user_items(2), &[4]);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let d = Dataset::from_tuples(1, 10, vec![(0, 7), (0, 2), (0, 5)]);
        assert_eq!(d.user_items(0), &[2, 5, 7]);
    }

    #[test]
    fn contains_and_degree() {
        let d = tiny();
        assert!(d.contains(0, 3));
        assert!(!d.contains(0, 0));
        assert_eq!(d.user_degree(1), 2);
        assert_eq!(d.user_degree(2), 1);
    }

    #[test]
    fn empty_user_allowed() {
        let d = Dataset::from_tuples(2, 3, vec![(0, 1)]);
        assert_eq!(d.user_items(1), &[] as &[u32]);
        assert_eq!(d.user_degree(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_user() {
        let _ = Dataset::from_tuples(1, 1, vec![(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_item() {
        let _ = Dataset::from_tuples(1, 1, vec![(0, 1)]);
    }

    #[test]
    fn iter_yields_everything_once() {
        let d = tiny();
        let all: Vec<_> = d.iter().collect();
        assert_eq!(all.len(), 5);
        assert!(all.contains(&(0, 1)));
        assert!(all.contains(&(2, 4)));
    }

    #[test]
    fn popularity_counts() {
        let d = tiny();
        let pop = d.item_popularity();
        assert_eq!(pop, vec![1, 2, 0, 1, 1]);
    }

    #[test]
    fn items_by_popularity_deterministic() {
        let d = tiny();
        let order = d.items_by_popularity();
        assert_eq!(order[0], 1, "item 1 has 2 interactions");
        // ties (pop 1): items 0, 3, 4 in ascending id order, then item 2.
        assert_eq!(&order[1..], &[0, 3, 4, 2]);
    }

    #[test]
    fn coldest_items_are_least_popular() {
        let d = tiny();
        assert_eq!(d.coldest_items(1), vec![2]);
        let two = d.coldest_items(2);
        assert_eq!(two.len(), 2);
        assert!(two.contains(&2));
    }

    #[test]
    fn stats_match_hand_computation() {
        let d = tiny();
        let s = d.stats();
        assert_eq!(s.num_users, 3);
        assert_eq!(s.num_items, 5);
        assert_eq!(s.num_interactions, 5);
        assert!((s.avg_interactions_per_user - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.sparsity - (1.0 - 5.0 / 15.0)).abs() < 1e-12);
    }

    #[test]
    fn from_source_is_an_identity_copy_for_datasets() {
        let d = tiny();
        let copy = Dataset::from_source(&d);
        assert_eq!(copy, d);
    }

    #[test]
    fn trait_item_popularity_matches_inherent() {
        let d = tiny();
        // The provided sweep and the CSR fast path must agree exactly.
        let via_trait = InteractionSource::item_popularity(&d);
        assert_eq!(via_trait, d.item_popularity());
        // A source using the default sweep agrees with a materialization.
        struct View<'a>(&'a Dataset);
        impl InteractionSource for View<'_> {
            fn num_users(&self) -> usize {
                self.0.num_users()
            }
            fn num_items(&self) -> usize {
                self.0.num_items()
            }
            fn user_items(&self, u: usize) -> &[u32] {
                self.0.user_items(u)
            }
        }
        let v = View(&d);
        assert_eq!(v.item_popularity(), d.item_popularity());
        assert_eq!(Dataset::from_source(&v), d);
    }

    #[test]
    fn inject_users_appends() {
        let d = tiny();
        let d2 = d.with_injected_users(&[vec![0, 2], vec![4]]);
        assert_eq!(d2.num_users(), 5);
        assert_eq!(d2.user_items(3), &[0, 2]);
        assert_eq!(d2.user_items(4), &[4]);
        assert_eq!(d2.user_items(0), d.user_items(0));
    }
}

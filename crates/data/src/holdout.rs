//! Leave-one-out holdout over a lazily generated interaction source.
//!
//! [`crate::split::leave_one_out`] rebuilds the training set as a new
//! [`crate::Dataset`] — fine when the population is materialized, hopeless
//! for the lazily sharded scale-free generators where each user's row is a
//! pure function of `(seed, user)` and removing an interaction up front
//! would force generating the whole population. [`HoldoutView`] instead
//! masks at *read time*: it wraps any [`InteractionSource`] and hides one
//! deterministically chosen item per eligible user (degree ≥ 2), exposing
//! the masked rows through the same trait. Training code sees a population
//! that genuinely lacks the held item; evaluation fetches it through
//! [`HoldoutView::test_set`], so scale-free cells report a real HR@10
//! instead of skipping hit-rate evaluation entirely.
//!
//! Masked rows are cached in fixed-size shards of [`OnceLock`], mirroring
//! the laziness of the wrapped source: untouched spans of the population
//! cost one empty lock, and the choice of held item is a pure function of
//! `(holdout seed, user)` — independent of access order, thread count and
//! shard size.

use crate::dataset::InteractionSource;
use crate::split::TestSet;
use fedrec_linalg::SeededRng;
use std::sync::OnceLock;

/// Default users per masked-row shard.
const DEFAULT_SHARD_ROWS: usize = 1_024;

/// One cached block of masked CSR rows.
#[derive(Debug)]
struct MaskShard {
    /// Local CSR offsets (`ptr[i]..ptr[i+1]` indexes local user `i`).
    ptr: Vec<usize>,
    /// Concatenated sorted item ids with the held item removed.
    items: Vec<u32>,
    /// The held-out item per local user (`None` below degree 2).
    held: Vec<Option<u32>>,
}

/// An [`InteractionSource`] wrapper that holds out one item per eligible
/// user at read time (see the module docs).
#[derive(Debug)]
pub struct HoldoutView<S> {
    inner: S,
    seed: u64,
    shard_rows: usize,
    shards: Vec<OnceLock<MaskShard>>,
}

impl<S: InteractionSource> HoldoutView<S> {
    /// Wrap `inner`, deriving each user's held item from `(seed, user)`.
    pub fn new(inner: S, seed: u64) -> Self {
        Self::with_shard_rows(inner, seed, DEFAULT_SHARD_ROWS)
    }

    /// [`HoldoutView::new`] with an explicit mask-shard size (tests and
    /// granularity tuning).
    pub fn with_shard_rows(inner: S, seed: u64, shard_rows: usize) -> Self {
        assert!(shard_rows > 0, "shard_rows must be positive");
        let num_shards = inner.num_users().div_ceil(shard_rows);
        Self {
            inner,
            seed,
            shard_rows,
            shards: (0..num_shards).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The wrapped source (rows *include* held items).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The item held out for user `u`, or `None` when the user's degree
    /// is below 2 (nothing can be held without emptying the row).
    pub fn held_item(&self, u: usize) -> Option<u32> {
        let shard = self.shard(u / self.shard_rows);
        shard.held[u % self.shard_rows]
    }

    /// The held items of users `0..span` as a [`TestSet`] — the partial
    /// test set the streamed evaluators accept. Faults in the mask shards
    /// covering the span (`O(span)` work).
    pub fn test_set(&self, span: usize) -> TestSet {
        assert!(span <= self.inner.num_users(), "span exceeds population");
        (0..span).map(|u| self.held_item(u)).collect()
    }

    fn shard(&self, si: usize) -> &MaskShard {
        self.shards[si].get_or_init(|| self.build_shard(si))
    }

    fn build_shard(&self, si: usize) -> MaskShard {
        let start = si * self.shard_rows;
        let rows = (self.inner.num_users() - start).min(self.shard_rows);
        let mut ptr = Vec::with_capacity(rows + 1);
        ptr.push(0usize);
        let mut items: Vec<u32> = Vec::new();
        let mut held = Vec::with_capacity(rows);
        for local in 0..rows {
            let u = start + local;
            let row = self.inner.user_items(u);
            if row.len() >= 2 {
                // The pick is a pure function of (seed, u): access order,
                // thread count and shard size cannot change it.
                let mut rng =
                    SeededRng::new(self.seed ^ (u as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let pick = rng.below(row.len());
                held.push(Some(row[pick]));
                items.extend(
                    row.iter()
                        .enumerate()
                        .filter(|&(i, _)| i != pick)
                        .map(|(_, &v)| v),
                );
            } else {
                held.push(None);
                items.extend_from_slice(row);
            }
            ptr.push(items.len());
        }
        MaskShard { ptr, items, held }
    }
}

impl<S: InteractionSource> InteractionSource for HoldoutView<S> {
    fn num_users(&self) -> usize {
        self.inner.num_users()
    }

    fn num_items(&self) -> usize {
        self.inner.num_items()
    }

    fn user_items(&self, u: usize) -> &[u32] {
        assert!(u < self.inner.num_users(), "user {u} out of range");
        let shard = self.shard(u / self.shard_rows);
        let local = u % self.shard_rows;
        &shard.items[shard.ptr[local]..shard.ptr[local + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalefree::ScaleFreeConfig;
    use crate::Dataset;

    #[test]
    fn masks_exactly_one_item_per_eligible_user() {
        let data = ScaleFreeConfig::tiny().generate(5);
        let view = HoldoutView::new(ScaleFreeConfig::tiny().generate(5), 77);
        for u in 0..data.num_users() {
            let full = data.user_items(u);
            let masked = view.user_items(u);
            match view.held_item(u) {
                Some(h) => {
                    assert_eq!(masked.len(), full.len() - 1, "user {u}");
                    assert!(full.contains(&h), "held item must come from the row");
                    assert!(!masked.contains(&h), "held item leaked into training");
                    assert!(masked.iter().all(|v| full.contains(v)));
                    assert!(masked.windows(2).all(|w| w[0] < w[1]), "row unsorted");
                }
                None => {
                    assert!(full.len() < 2);
                    assert_eq!(masked, full);
                }
            }
        }
    }

    #[test]
    fn holdout_is_deterministic_and_shard_size_free() {
        let mk = |rows| HoldoutView::with_shard_rows(ScaleFreeConfig::tiny().generate(3), 9, rows);
        let a = mk(64);
        let b = mk(1_024);
        // Touch b in reverse order to vary generation order too.
        for u in (0..b.num_users()).rev() {
            let _ = b.user_items(u);
        }
        for u in 0..a.num_users() {
            assert_eq!(a.held_item(u), b.held_item(u), "user {u} pick diverged");
            assert_eq!(a.user_items(u), b.user_items(u), "user {u} row diverged");
        }
    }

    #[test]
    fn test_set_covers_the_span_and_matches_held_items() {
        let view = HoldoutView::new(ScaleFreeConfig::tiny().generate(4), 11);
        let test = view.test_set(200);
        assert_eq!(test.len(), 200);
        for (u, slot) in test.iter().enumerate() {
            assert_eq!(*slot, view.held_item(u));
        }
        // tiny() guarantees min_degree 2: every span user holds an item.
        assert!(test.iter().all(|t| t.is_some()));
    }

    #[test]
    fn low_degree_users_keep_everything() {
        let data = Dataset::from_tuples(3, 10, vec![(0, 4), (1, 2), (1, 7)]);
        let view = HoldoutView::new(data, 13);
        assert_eq!(view.held_item(0), None, "singleton user keeps its item");
        assert_eq!(view.user_items(0), &[4]);
        assert_eq!(view.held_item(2), None, "empty user stays empty");
        assert!(view.user_items(2).is_empty());
        assert!(view.held_item(1).is_some());
        assert_eq!(view.user_items(1).len(), 1);
    }

    #[test]
    fn different_holdout_seeds_pick_different_items() {
        let a = HoldoutView::new(ScaleFreeConfig::tiny().generate(6), 1);
        let b = HoldoutView::new(ScaleFreeConfig::tiny().generate(6), 2);
        let diff = (0..a.num_users()).any(|u| a.held_item(u) != b.held_item(u));
        assert!(diff, "holdout seed must matter");
    }
}

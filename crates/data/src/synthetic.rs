//! Statistically-matched synthetic dataset generators.
//!
//! The raw MovieLens / Steam files cannot be bundled, so experiments run by
//! default on synthetic datasets whose *statistics* match Table II of the
//! paper: user count, item count, interaction count (hence sparsity and
//! average degree), and a Zipf item-popularity law (real rating data is
//! famously Zipf-distributed; Steam play data even more sharply so, which
//! is why we give it a larger exponent).
//!
//! The attack dynamics the paper measures — how fast poisoned item vectors
//! can climb into top-K lists, how density affects attack difficulty —
//! depend on these statistics rather than on which movie is which, so the
//! qualitative results carry over (DESIGN.md §3 discusses this
//! substitution). Anyone with the original files can run the same
//! experiments through [`crate::loader`].

use crate::dataset::Dataset;
use fedrec_linalg::rng::ZipfTable;
use fedrec_linalg::SeededRng;

/// Configuration for a synthetic implicit-feedback dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Human-readable name, used in reports.
    pub name: &'static str,
    /// Number of users `n`.
    pub num_users: usize,
    /// Number of items `m`.
    pub num_items: usize,
    /// Target number of unique interactions `|D|`.
    pub num_interactions: usize,
    /// Zipf exponent of item popularity (larger = more skewed).
    pub zipf_exponent: f64,
    /// Shape of per-user activity: users also follow a Zipf law with this
    /// exponent, mimicking the heavy/casual user split of real platforms.
    pub user_activity_exponent: f64,
}

impl SyntheticConfig {
    /// MovieLens-100K statistics (943 users, 1,682 items, 100,000
    /// interactions, sparsity 93.70 %).
    pub fn ml100k() -> Self {
        Self {
            name: "ml-100k",
            num_users: 943,
            num_items: 1_682,
            num_interactions: 100_000,
            zipf_exponent: 0.9,
            user_activity_exponent: 0.7,
        }
    }

    /// MovieLens-1M statistics (6,040 users, 3,706 items, 1,000,209
    /// interactions, sparsity 95.53 %).
    pub fn ml1m() -> Self {
        Self {
            name: "ml-1m",
            num_users: 6_040,
            num_items: 3_706,
            num_interactions: 1_000_209,
            zipf_exponent: 0.9,
            user_activity_exponent: 0.7,
        }
    }

    /// Steam-200K statistics (3,753 users, 5,134 items, 114,713
    /// interactions, sparsity 99.40 %). Play data is more sharply skewed
    /// than movie ratings, hence the higher exponent.
    pub fn steam200k() -> Self {
        Self {
            name: "steam-200k",
            num_users: 3_753,
            num_items: 5_134,
            num_interactions: 114_713,
            zipf_exponent: 1.1,
            user_activity_exponent: 0.9,
        }
    }

    /// A few-hundred-user miniature with ML-100K-like density, for unit
    /// tests, doc examples and smoke-scale experiments.
    pub fn smoke() -> Self {
        Self {
            name: "smoke",
            num_users: 120,
            num_items: 200,
            num_interactions: 3_000,
            zipf_exponent: 0.9,
            user_activity_exponent: 0.7,
        }
    }

    /// A sparser miniature mirroring Steam-200K's density ordering relative
    /// to [`Self::smoke`]; used by smoke-scale multi-dataset experiments.
    pub fn smoke_sparse() -> Self {
        Self {
            name: "smoke-sparse",
            num_users: 120,
            num_items: 400,
            num_interactions: 1_400,
            zipf_exponent: 1.1,
            user_activity_exponent: 0.9,
        }
    }

    /// A denser miniature mirroring ML-1M's density ordering relative to
    /// [`Self::smoke`].
    pub fn smoke_dense() -> Self {
        Self {
            name: "smoke-dense",
            num_users: 150,
            num_items: 180,
            num_interactions: 5_500,
            zipf_exponent: 0.9,
            user_activity_exponent: 0.7,
        }
    }

    /// Generate the dataset. Deterministic in `(config, seed)`.
    ///
    /// Per-user quotas are allocated proportionally to a Zipf activity law
    /// (every user gets at least one interaction), then each user draws
    /// distinct items from the Zipf popularity law by rejection. The
    /// realized `|D|` matches the configured target exactly unless quotas
    /// exceed the item count, in which case they are capped at `m`.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.num_users > 0 && self.num_items > 0);
        assert!(
            self.num_interactions >= self.num_users,
            "need at least one interaction per user"
        );
        assert!(
            self.num_interactions <= self.num_users * self.num_items,
            "more interactions than user-item pairs"
        );
        let mut rng = SeededRng::new(seed);
        let item_table = ZipfTable::new(self.num_items, self.zipf_exponent);

        // No user may interact with more than 60 % of the catalog: real
        // datasets never saturate (ML-100K's heaviest user rated ~44 % of
        // movies) and BPR needs negatives to exist for every user.
        let max_degree = ((self.num_items as f64 * 0.6) as usize).max(1);
        assert!(
            max_degree * self.num_users >= self.num_interactions,
            "interaction target exceeds the per-user degree cap"
        );

        // Zipf-shaped per-user activity, shuffled so user id carries no
        // meaning, scaled to sum to num_interactions.
        let mut weights: Vec<f64> = (0..self.num_users)
            .map(|r| 1.0 / ((r + 1) as f64).powf(self.user_activity_exponent))
            .collect();
        rng.shuffle(&mut weights);
        let total_w: f64 = weights.iter().sum();
        let spare = self.num_interactions - self.num_users; // 1 guaranteed each
        let mut quotas: Vec<usize> = weights
            .iter()
            .map(|w| (1 + (w / total_w * spare as f64).floor() as usize).min(max_degree))
            .collect();
        // Distribute the rounding remainder (and anything lost to the
        // per-user cap of m items) one by one across uncapped users.
        let mut assigned: usize = quotas.iter().sum();
        let mut u = 0;
        while assigned < self.num_interactions {
            if quotas[u] < max_degree {
                quotas[u] += 1;
                assigned += 1;
            }
            u = (u + 1) % self.num_users;
        }

        // Items are drawn by Zipf rank; a random permutation maps rank to
        // item id so popular items are scattered over the id space.
        let mut rank_to_item: Vec<u32> = (0..self.num_items as u32).collect();
        rng.shuffle(&mut rank_to_item);

        let mut tuples = Vec::with_capacity(self.num_interactions);
        let mut chosen = vec![false; self.num_items];
        for (u, &quota) in quotas.iter().enumerate() {
            let mut items: Vec<u32> = Vec::with_capacity(quota);
            // Rejection sampling until quota distinct items; fall back to a
            // linear scan if the user needs almost every item.
            let mut attempts = 0usize;
            while items.len() < quota {
                let item = rank_to_item[item_table.sample(&mut rng)];
                if !chosen[item as usize] {
                    chosen[item as usize] = true;
                    items.push(item);
                }
                attempts += 1;
                if attempts > 50 * quota.max(16) {
                    for v in 0..self.num_items as u32 {
                        if items.len() >= quota {
                            break;
                        }
                        if !chosen[v as usize] {
                            chosen[v as usize] = true;
                            items.push(v);
                        }
                    }
                }
            }
            for &v in &items {
                chosen[v as usize] = false;
                tuples.push((u as u32, v));
            }
        }
        Dataset::from_tuples(self.num_users, self.num_items, tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matches_configured_counts() {
        let cfg = SyntheticConfig::smoke();
        let d = cfg.generate(1);
        assert_eq!(d.num_users(), cfg.num_users);
        assert_eq!(d.num_items(), cfg.num_items);
        assert_eq!(d.num_interactions(), cfg.num_interactions);
    }

    #[test]
    fn every_user_has_at_least_one_interaction() {
        let d = SyntheticConfig::smoke().generate(2);
        for u in 0..d.num_users() {
            assert!(d.user_degree(u) >= 1, "user {u} empty");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::smoke();
        assert_eq!(cfg.generate(5), cfg.generate(5));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SyntheticConfig::smoke();
        assert_ne!(cfg.generate(5), cfg.generate(6));
    }

    #[test]
    fn popularity_is_skewed() {
        let d = SyntheticConfig::smoke().generate(7);
        let mut pop = d.item_popularity();
        pop.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = pop[..pop.len() / 10].iter().map(|&x| x as u64).sum();
        let total: u64 = pop.iter().map(|&x| x as u64).sum();
        assert!(
            top_decile as f64 > 0.3 * total as f64,
            "top 10% of items should hold >30% of interactions, got {}",
            top_decile as f64 / total as f64
        );
    }

    #[test]
    fn table2_presets_match_paper_sizes() {
        // Only check the *configured* numbers here (generation at full size
        // is exercised by the paper-scale experiment path).
        let ml100k = SyntheticConfig::ml100k();
        assert_eq!(
            (ml100k.num_users, ml100k.num_items, ml100k.num_interactions),
            (943, 1_682, 100_000)
        );
        let ml1m = SyntheticConfig::ml1m();
        assert_eq!(
            (ml1m.num_users, ml1m.num_items, ml1m.num_interactions),
            (6_040, 3_706, 1_000_209)
        );
        let steam = SyntheticConfig::steam200k();
        assert_eq!(
            (steam.num_users, steam.num_items, steam.num_interactions),
            (3_753, 5_134, 114_713)
        );
    }

    #[test]
    fn ml100k_sparsity_matches_table2() {
        let s = SyntheticConfig::ml100k();
        let sparsity = 1.0 - s.num_interactions as f64 / (s.num_users * s.num_items) as f64;
        assert!((sparsity - 0.9370).abs() < 0.001, "sparsity {sparsity}");
    }

    #[test]
    fn full_ml100k_generates_exact_counts() {
        let d = SyntheticConfig::ml100k().generate(1);
        assert_eq!(d.num_users(), 943);
        assert_eq!(d.num_interactions(), 100_000);
    }

    #[test]
    #[should_panic(expected = "at least one interaction")]
    fn rejects_too_few_interactions() {
        let cfg = SyntheticConfig {
            name: "bad",
            num_users: 10,
            num_items: 10,
            num_interactions: 5,
            zipf_exponent: 1.0,
            user_activity_exponent: 1.0,
        };
        let _ = cfg.generate(0);
    }

    #[test]
    #[should_panic(expected = "more interactions")]
    fn rejects_overfull() {
        let cfg = SyntheticConfig {
            name: "bad",
            num_users: 2,
            num_items: 2,
            num_interactions: 5,
            zipf_exponent: 1.0,
            user_activity_exponent: 1.0,
        };
        let _ = cfg.generate(0);
    }
}

//! Datasets, splits, public-interaction views and synthetic generators.
//!
//! The paper evaluates on three implicit-feedback datasets (Table II):
//!
//! | Dataset        | #users | #items | #interactions | sparsity |
//! |----------------|--------|--------|---------------|----------|
//! | MovieLens-100K | 943    | 1,682  | 100,000       | 93.70 %  |
//! | MovieLens-1M   | 6,040  | 3,706  | 1,000,209     | 95.53 %  |
//! | Steam-200K     | 3,753  | 5,134  | 114,713       | 99.40 %  |
//!
//! This crate provides:
//!
//! * [`Dataset`] — a deduplicated implicit-feedback interaction matrix in
//!   CSR layout, the `D ⊆ U × V` of §III-A;
//! * [`split::leave_one_out`] — the paper's train/test protocol;
//! * [`public::PublicView`] — the attacker's prior knowledge `D′ ⊆ D` with
//!   proportion ξ (§III-C);
//! * [`loader`] — parsers for the real MovieLens / Steam file formats, for
//!   users who have the original data;
//! * [`synthetic`] — statistically-matched synthetic generators used when
//!   the real files are unavailable (see DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use fedrec_data::synthetic::SyntheticConfig;
//!
//! let data = SyntheticConfig::smoke().generate(42);
//! let (train, _test) = fedrec_data::split::leave_one_out(&data, 7);
//! let public = fedrec_data::public::PublicView::sample(&train, 0.01, 9);
//! assert!(public.num_interactions() <= train.num_interactions());
//! ```

// Full rustdoc coverage is enforced (see fedrec-linalg): missing docs are
// a hard error in this crate, and CI's `cargo doc` step runs with
// `RUSTDOCFLAGS="-D warnings"`.
#![deny(missing_docs)]

pub mod dataset;
pub mod holdout;
pub mod loader;
pub mod negative;
pub mod public;
pub mod scalefree;
pub mod split;
pub mod synthetic;

pub use dataset::{Dataset, DatasetStats, InteractionSource};
pub use holdout::HoldoutView;
pub use public::PublicView;
pub use scalefree::{ScaleFreeConfig, ScaleFreeDataset};

//! Parsers for the real dataset files used by the paper.
//!
//! * MovieLens-100K `u.data`: tab-separated `user \t item \t rating \t ts`.
//! * MovieLens-1M `ratings.dat`: `user::item::rating::ts`.
//! * Steam-200K `steam-200k.csv`: `user,game,behavior,value[,0]` where
//!   behavior is `purchase` or `play`; both are kept as implicit feedback,
//!   matching "we transform all kinds of interactions into implicit
//!   feedback".
//!
//! Raw ids are arbitrary (MovieLens user ids are 1-based; Steam uses large
//! numeric ids and game *names*), so every loader re-maps users and items
//! to dense `0..n` / `0..m` ranges in first-appearance order.

use crate::dataset::Dataset;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors produced by the dataset loaders.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not match the expected format.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation of what failed to parse.
        reason: String,
    },
    /// The file parsed but contained no interactions.
    Empty,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Malformed { line, reason } => {
                write!(f, "malformed record at line {line}: {reason}")
            }
            LoadError::Empty => write!(f, "file contained no interactions"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Incrementally maps arbitrary raw keys to dense `u32` ids.
#[derive(Debug, Default)]
struct IdMap {
    map: HashMap<String, u32>,
}

impl IdMap {
    fn get(&mut self, key: &str) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(key.to_owned()).or_insert(next)
    }
    fn len(&self) -> usize {
        self.map.len()
    }
}

fn build(tuples: Vec<(u32, u32)>, users: usize, items: usize) -> Result<Dataset, LoadError> {
    if tuples.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(Dataset::from_tuples(users, items, tuples))
}

/// Parse MovieLens-100K `u.data` content (`user \t item \t rating \t ts`).
pub fn parse_movielens_100k(content: &str) -> Result<Dataset, LoadError> {
    parse_separated(content, |l| l.split('\t'), "u.data")
}

/// Parse MovieLens-1M `ratings.dat` content (`user::item::rating::ts`).
pub fn parse_movielens_1m(content: &str) -> Result<Dataset, LoadError> {
    parse_separated(content, |l| l.split("::"), "ratings.dat")
}

fn parse_separated<'a, I, F>(content: &'a str, split: F, what: &str) -> Result<Dataset, LoadError>
where
    I: Iterator<Item = &'a str>,
    F: Fn(&'a str) -> I,
{
    let mut users = IdMap::default();
    let mut items = IdMap::default();
    let mut tuples = Vec::new();
    for (idx, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = split(line);
        let (u_raw, v_raw) = match (fields.next(), fields.next()) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(LoadError::Malformed {
                    line: idx + 1,
                    reason: format!("expected at least 2 {what} fields"),
                })
            }
        };
        if u_raw.parse::<u64>().is_err() {
            return Err(LoadError::Malformed {
                line: idx + 1,
                reason: format!("user id {u_raw:?} is not numeric"),
            });
        }
        if v_raw.parse::<u64>().is_err() {
            return Err(LoadError::Malformed {
                line: idx + 1,
                reason: format!("item id {v_raw:?} is not numeric"),
            });
        }
        tuples.push((users.get(u_raw), items.get(v_raw)));
    }
    let (u, v) = (users.len(), items.len());
    build(tuples, u, v)
}

/// Parse Steam-200K CSV content (`user,game,behavior,value[,0]`).
///
/// Game names may contain commas; the format is column-count-from-the-ends:
/// the first field is the user, the last two (or three when the trailing
/// `,0` flag is present) are numeric, and the behavior field sits before
/// them. Everything between user and behavior is the game name.
pub fn parse_steam_200k(content: &str) -> Result<Dataset, LoadError> {
    let mut users = IdMap::default();
    let mut items = IdMap::default();
    let mut tuples = Vec::new();
    for (idx, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 4 {
            return Err(LoadError::Malformed {
                line: idx + 1,
                reason: "expected at least 4 CSV fields".to_owned(),
            });
        }
        // Optional trailing "0" flag present in the Kaggle dump.
        let has_flag = fields.len() >= 5 && fields[fields.len() - 1].trim() == "0";
        let value_idx = if has_flag {
            fields.len() - 2
        } else {
            fields.len() - 1
        };
        let behavior_idx = value_idx - 1;
        let behavior = fields[behavior_idx].trim();
        if behavior != "purchase" && behavior != "play" {
            return Err(LoadError::Malformed {
                line: idx + 1,
                reason: format!("unknown behavior {behavior:?}"),
            });
        }
        if fields[value_idx].trim().parse::<f64>().is_err() {
            return Err(LoadError::Malformed {
                line: idx + 1,
                reason: format!("value {:?} is not numeric", fields[value_idx]),
            });
        }
        let user = fields[0].trim();
        let game = fields[1..behavior_idx].join(",");
        tuples.push((users.get(user), items.get(game.trim())));
    }
    let (u, v) = (users.len(), items.len());
    build(tuples, u, v)
}

/// Load MovieLens-100K from a `u.data` file on disk.
pub fn load_movielens_100k(path: &Path) -> Result<Dataset, LoadError> {
    parse_movielens_100k(&fs::read_to_string(path)?)
}

/// Load MovieLens-1M from a `ratings.dat` file on disk.
pub fn load_movielens_1m(path: &Path) -> Result<Dataset, LoadError> {
    parse_movielens_1m(&fs::read_to_string(path)?)
}

/// Load Steam-200K from a `steam-200k.csv` file on disk.
pub fn load_steam_200k(path: &Path) -> Result<Dataset, LoadError> {
    parse_steam_200k(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ml100k_parses_and_dedups() {
        let content =
            "1\t10\t5\t881250949\n1\t20\t3\t881250950\n2\t10\t4\t881250951\n1\t10\t5\t881250952\n";
        let d = parse_movielens_100k(content).unwrap();
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.num_items(), 2);
        assert_eq!(d.num_interactions(), 3, "duplicate (1,10) collapsed");
    }

    #[test]
    fn ml100k_skips_blank_lines() {
        let d = parse_movielens_100k("1\t1\t5\t0\n\n2\t2\t5\t0\n").unwrap();
        assert_eq!(d.num_interactions(), 2);
    }

    #[test]
    fn ml100k_rejects_short_lines() {
        let err = parse_movielens_100k("1\n").unwrap_err();
        assert!(matches!(err, LoadError::Malformed { line: 1, .. }), "{err}");
    }

    #[test]
    fn ml100k_rejects_non_numeric() {
        let err = parse_movielens_100k("a\tb\t5\t0\n").unwrap_err();
        assert!(err.to_string().contains("not numeric"));
    }

    #[test]
    fn ml1m_double_colon_format() {
        let d = parse_movielens_1m("1::1193::5::978300760\n1::661::3::978302109\n").unwrap();
        assert_eq!(d.num_users(), 1);
        assert_eq!(d.num_items(), 2);
    }

    #[test]
    fn steam_merges_purchase_and_play() {
        let content = "\
151603712,The Elder Scrolls V Skyrim,purchase,1.0,0
151603712,The Elder Scrolls V Skyrim,play,273.0,0
151603712,Fallout 4,purchase,1.0,0
59945701,Fallout 4,play,12.1,0
";
        let d = parse_steam_200k(content).unwrap();
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.num_items(), 2);
        assert_eq!(d.num_interactions(), 3, "purchase+play of same game merge");
    }

    #[test]
    fn steam_handles_commas_in_game_names() {
        let content = "1,Warhammer 40,000 Dawn of War II,play,2.5,0\n";
        let d = parse_steam_200k(content).unwrap();
        assert_eq!(d.num_items(), 1);
        assert_eq!(d.num_interactions(), 1);
    }

    #[test]
    fn steam_without_trailing_flag() {
        let d = parse_steam_200k("1,Portal 2,play,5.0\n").unwrap();
        assert_eq!(d.num_interactions(), 1);
    }

    #[test]
    fn steam_rejects_unknown_behavior() {
        let err = parse_steam_200k("1,Portal 2,uninstall,5.0,0\n").unwrap_err();
        assert!(err.to_string().contains("unknown behavior"));
    }

    #[test]
    fn empty_file_is_error() {
        assert!(matches!(parse_movielens_100k(""), Err(LoadError::Empty)));
        assert!(matches!(parse_steam_200k("\n\n"), Err(LoadError::Empty)));
    }

    #[test]
    fn io_error_is_wrapped() {
        let err = load_movielens_100k(Path::new("/nonexistent/u.data")).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
    }

    #[test]
    fn ids_are_dense_and_first_appearance_ordered() {
        let d = parse_movielens_100k("50\t900\t1\t0\n7\t900\t1\t0\n50\t3\t1\t0\n").unwrap();
        // user 50 -> 0, user 7 -> 1; item 900 -> 0, item 3 -> 1.
        assert!(d.contains(0, 0));
        assert!(d.contains(1, 0));
        assert!(d.contains(0, 1));
    }
}

//! Train/test splitting.
//!
//! The paper: "We use the leave-one-out method to divide the training set
//! and test set." For each user one interacted item is held out for testing
//! (chosen uniformly at random with a seed — the MovieLens timestamp field
//! is not part of our [`Dataset`], and the paper does not specify
//! timestamp-based holdout); users with fewer than two interactions keep
//! all their data in training and are excluded from HR evaluation.

use crate::dataset::Dataset;
use fedrec_linalg::SeededRng;

/// Held-out test interactions: `test[u]` is the item left out for user `u`,
/// or `None` when the user had too few interactions to hold one out.
pub type TestSet = Vec<Option<u32>>;

/// Leave-one-out split. Returns `(train, test)` where `train` lacks exactly
/// one item per eligible user and `test[u]` names it.
pub fn leave_one_out(data: &Dataset, seed: u64) -> (Dataset, TestSet) {
    let mut rng = SeededRng::new(seed);
    let mut test: TestSet = vec![None; data.num_users()];
    let mut tuples = Vec::with_capacity(data.num_interactions());
    for (u, slot) in test.iter_mut().enumerate() {
        let items = data.user_items(u);
        if items.len() >= 2 {
            let held = items[rng.below(items.len())];
            *slot = Some(held);
            tuples.extend(items.iter().filter(|&&v| v != held).map(|&v| (u as u32, v)));
        } else {
            tuples.extend(items.iter().map(|&v| (u as u32, v)));
        }
    }
    (
        Dataset::from_tuples(data.num_users(), data.num_items(), tuples),
        test,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_tuples(
            4,
            6,
            vec![
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 4),
                (2, 5),
                // user 3 has no interactions
            ],
        )
    }

    #[test]
    fn each_eligible_user_loses_exactly_one() {
        let data = sample();
        let (train, test) = leave_one_out(&data, 1);
        assert_eq!(train.user_degree(0), 2);
        assert_eq!(train.user_degree(2), 1);
        assert!(test[0].is_some());
        assert!(test[2].is_some());
    }

    #[test]
    fn singleton_and_empty_users_keep_everything() {
        let data = sample();
        let (train, test) = leave_one_out(&data, 1);
        assert_eq!(train.user_degree(1), 1, "singleton user keeps its item");
        assert_eq!(test[1], None);
        assert_eq!(train.user_degree(3), 0);
        assert_eq!(test[3], None);
    }

    #[test]
    fn held_out_item_absent_from_train_but_in_original() {
        let data = sample();
        let (train, test) = leave_one_out(&data, 5);
        for (u, t) in test.iter().enumerate() {
            if let Some(held) = *t {
                assert!(!train.contains(u, held), "held-out item leaked to train");
                assert!(data.contains(u, held), "held-out item not in original");
            }
        }
    }

    #[test]
    fn split_is_seed_deterministic() {
        let data = sample();
        let (t1, s1) = leave_one_out(&data, 77);
        let (t2, s2) = leave_one_out(&data, 77);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn different_seeds_can_differ() {
        let data = sample();
        let any_diff = (0..20).any(|s| {
            let (_, a) = leave_one_out(&data, s);
            let (_, b) = leave_one_out(&data, s + 100);
            a != b
        });
        assert!(any_diff, "holdout never varies across seeds");
    }

    #[test]
    fn interaction_counts_add_up() {
        let data = sample();
        let (train, test) = leave_one_out(&data, 3);
        let held = test.iter().filter(|t| t.is_some()).count();
        assert_eq!(
            train.num_interactions() + held,
            data.num_interactions(),
            "split must conserve interactions"
        );
    }
}

//! Negative-item sampling.
//!
//! §III-B of the paper: "each user client `u_i` randomly samples a subset
//! of negative items `V_i⁻′` from `V_i⁻`, and uses `V_i⁻′` instead of
//! `V_i⁻`", with `|V_i⁻′| = |V_i⁺|` so BPR pairs positives and negatives
//! one-to-one (Eq. 4). Clients resample every local round, the standard
//! BPR practice.

use crate::dataset::Dataset;
use fedrec_linalg::SeededRng;

/// Samples negatives for one user: items the user has *not* interacted
/// with, drawn uniformly by rejection against the user's positive set.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    num_items: usize,
}

impl NegativeSampler {
    /// Sampler over an item universe of the given size.
    pub fn new(num_items: usize) -> Self {
        assert!(num_items > 0, "empty item universe");
        Self { num_items }
    }

    /// Draw `count` negative items for a user with positive set
    /// `positives` (sorted). Items may repeat across draws (sampling with
    /// replacement), which matches per-epoch BPR resampling; each returned
    /// item is guaranteed not to be in `positives`.
    ///
    /// Panics if the user has interacted with every item.
    pub fn sample(&self, positives: &[u32], count: usize, rng: &mut SeededRng) -> Vec<u32> {
        assert!(
            positives.len() < self.num_items,
            "user has interacted with every item; no negatives exist"
        );
        debug_assert!(positives.windows(2).all(|w| w[0] < w[1]));
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let v = rng.below(self.num_items) as u32;
            if positives.binary_search(&v).is_err() {
                out.push(v);
            }
        }
        out
    }

    /// Pair each of the user's positives with one fresh negative — the
    /// `V_i = {(v⁺, v⁻), …}` of Eq. 4.
    pub fn pair_for_user(
        &self,
        data: &Dataset,
        user: usize,
        rng: &mut SeededRng,
    ) -> Vec<(u32, u32)> {
        let pos = data.user_items(user);
        let neg = self.sample(pos, pos.len(), rng);
        pos.iter().copied().zip(neg).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negatives_avoid_positives() {
        let s = NegativeSampler::new(10);
        let mut rng = SeededRng::new(1);
        let positives = [0, 2, 4, 6, 8];
        for _ in 0..100 {
            for v in s.sample(&positives, 5, &mut rng) {
                assert!(positives.binary_search(&v).is_err());
            }
        }
    }

    #[test]
    fn sample_count_is_exact() {
        let s = NegativeSampler::new(100);
        let mut rng = SeededRng::new(2);
        assert_eq!(s.sample(&[1], 7, &mut rng).len(), 7);
        assert_eq!(s.sample(&[1], 0, &mut rng).len(), 0);
    }

    #[test]
    fn works_when_only_one_negative_exists() {
        let s = NegativeSampler::new(3);
        let mut rng = SeededRng::new(3);
        let got = s.sample(&[0, 2], 5, &mut rng);
        assert!(got.iter().all(|&v| v == 1));
    }

    #[test]
    #[should_panic(expected = "no negatives exist")]
    fn rejects_saturated_user() {
        let s = NegativeSampler::new(2);
        let mut rng = SeededRng::new(4);
        let _ = s.sample(&[0, 1], 1, &mut rng);
    }

    #[test]
    fn pairs_match_positive_count() {
        let data = Dataset::from_tuples(2, 10, vec![(0, 1), (0, 5), (0, 7), (1, 2)]);
        let s = NegativeSampler::new(10);
        let mut rng = SeededRng::new(5);
        let pairs = s.pair_for_user(&data, 0, &mut rng);
        assert_eq!(pairs.len(), 3);
        for (p, n) in pairs {
            assert!(data.contains(0, p));
            assert!(!data.contains(0, n));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = NegativeSampler::new(50);
        let a = s.sample(&[3, 9], 10, &mut SeededRng::new(42));
        let b = s.sample(&[3, 9], 10, &mut SeededRng::new(42));
        assert_eq!(a, b);
    }
}

//! The attacker's prior knowledge: public interactions `D′`.
//!
//! §III-C of the paper: "For each user `u_i ∈ U`, we randomly select ξ of
//! items in `V_i⁺`, and expose the interactions between user `u_i` and these
//! selected items to attacker." A [`PublicView`] is that exposed subset,
//! sampled per user with proportion ξ.
//!
//! ξ = 0 yields an empty view and reproduces the paper's ablation
//! (Table IX) in which FedRecAttack loses validity completely.

use crate::dataset::InteractionSource;
use fedrec_linalg::SeededRng;

/// The public subset `D′ ⊆ D` visible to the attacker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicView {
    num_users: usize,
    num_items: usize,
    user_ptr: Vec<usize>,
    item_ids: Vec<u32>,
}

impl PublicView {
    /// Sample a public view exposing proportion `xi ∈ [0, 1]` of each
    /// user's interactions (rounded to the nearest count, so a user with 30
    /// interactions at ξ=1% may expose 0; that matches the paper's
    /// observation that Steam users frequently expose nothing at ξ=1%).
    ///
    /// Generic over [`InteractionSource`], so the attacker's knowledge can
    /// be drawn from a dense [`crate::Dataset`] or a lazily generated
    /// population alike; sampling sweeps every user, so on a lazy source
    /// this materializes the population (`O(|D|)`) — the honest cost of
    /// the paper's per-user exposure model. For a `Dataset` the result is
    /// byte-identical to what the historical `&Dataset`-only signature
    /// produced.
    pub fn sample<D: InteractionSource + ?Sized>(data: &D, xi: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&xi), "xi out of range: {xi}");
        let mut rng = SeededRng::new(seed);
        let mut user_ptr = Vec::with_capacity(data.num_users() + 1);
        let mut item_ids = Vec::new();
        user_ptr.push(0);
        for u in 0..data.num_users() {
            let items = data.user_items(u);
            let count = ((items.len() as f64) * xi).round() as usize;
            let count = count.min(items.len());
            if count > 0 {
                let mut chosen: Vec<u32> = rng
                    .sample_indices(items.len(), count)
                    .into_iter()
                    .map(|i| items[i])
                    .collect();
                chosen.sort_unstable();
                item_ids.extend_from_slice(&chosen);
            }
            user_ptr.push(item_ids.len());
        }
        Self {
            num_users: data.num_users(),
            num_items: data.num_items(),
            user_ptr,
            item_ids,
        }
    }

    /// An empty view (ξ = 0), the Table IX ablation arm.
    pub fn empty(num_users: usize, num_items: usize) -> Self {
        Self {
            num_users,
            num_items,
            user_ptr: vec![0; num_users + 1],
            item_ids: Vec::new(),
        }
    }

    /// Number of users in the underlying dataset.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items in the underlying dataset.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Total `|D′|`.
    #[inline]
    pub fn num_interactions(&self) -> usize {
        self.item_ids.len()
    }

    /// Sorted public items of user `u`.
    #[inline]
    pub fn user_items(&self, u: usize) -> &[u32] {
        &self.item_ids[self.user_ptr[u]..self.user_ptr[u + 1]]
    }

    /// Whether `(u, v) ∈ D′`.
    #[inline]
    pub fn contains(&self, u: usize, v: u32) -> bool {
        self.user_items(u).binary_search(&v).is_ok()
    }

    /// Users with at least one public interaction — the only users whose
    /// feature vectors the attacker can meaningfully approximate.
    pub fn active_users(&self) -> Vec<usize> {
        (0..self.num_users)
            .filter(|&u| !self.user_items(u).is_empty())
            .collect()
    }

    /// Iterate all public `(user, item)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_users)
            .flat_map(move |u| self.user_items(u).iter().map(move |&v| (u as u32, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::synthetic::SyntheticConfig;

    fn data() -> Dataset {
        SyntheticConfig::smoke().generate(3)
    }

    #[test]
    fn view_is_subset_of_data() {
        let d = data();
        let v = PublicView::sample(&d, 0.1, 11);
        for (u, item) in v.iter() {
            assert!(d.contains(u as usize, item), "public pair not in D");
        }
    }

    #[test]
    fn proportion_is_respected_per_user() {
        let d = data();
        let v = PublicView::sample(&d, 0.2, 11);
        for u in 0..d.num_users() {
            let expect = ((d.user_degree(u) as f64) * 0.2).round() as usize;
            assert_eq!(v.user_items(u).len(), expect.min(d.user_degree(u)));
        }
    }

    #[test]
    fn xi_zero_is_empty_and_xi_one_is_everything() {
        let d = data();
        let v0 = PublicView::sample(&d, 0.0, 1);
        assert_eq!(v0.num_interactions(), 0);
        assert!(v0.active_users().is_empty());
        let v1 = PublicView::sample(&d, 1.0, 1);
        assert_eq!(v1.num_interactions(), d.num_interactions());
    }

    #[test]
    fn empty_constructor_matches_xi_zero() {
        let d = data();
        let a = PublicView::empty(d.num_users(), d.num_items());
        let b = PublicView::sample(&d, 0.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let d = data();
        assert_eq!(
            PublicView::sample(&d, 0.05, 42),
            PublicView::sample(&d, 0.05, 42)
        );
    }

    #[test]
    fn different_seeds_differ_for_nontrivial_xi() {
        let d = data();
        let diff = (0..10)
            .any(|s| PublicView::sample(&d, 0.5, s) != PublicView::sample(&d, 0.5, s + 1000));
        assert!(diff);
    }

    #[test]
    fn active_users_have_public_items() {
        let d = data();
        let v = PublicView::sample(&d, 0.05, 4);
        for &u in &v.active_users() {
            assert!(!v.user_items(u).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "xi out of range")]
    fn rejects_bad_xi() {
        let d = data();
        let _ = PublicView::sample(&d, 1.5, 0);
    }
}

//! Byzantine-robust aggregation rules.
//!
//! All implement [`Aggregator`] and are drop-in replacements for the plain
//! sum of Eq. 7. To stay comparable with sum semantics (the server's
//! update is `V ← V − η·agg`), robust *averages* are rescaled by the
//! number of contributing clients.
//!
//! The recommendation-specific subtlety: client gradients are sparse and
//! touch disjoint item sets, so coordinate-wise statistics are computed
//! over the clients that actually touched an item (an all-clients
//! convention would zero out every item seen by a minority, destroying
//! benign learning — the "FL defenses do not fit FR perfectly" point of
//! §VI).

use fedrec_federated::server::Aggregator;
use fedrec_linalg::{stats, SparseGrad};

/// Krum (Blanchard et al.): pick the single update closest (in summed
/// squared distance) to its `n − f − 2` nearest neighbors and use it as
/// the round's update, scaled by `n` to match sum semantics.
#[derive(Debug, Clone, Copy)]
pub struct Krum {
    /// Number of byzantine clients the rule should tolerate (`f`).
    pub assumed_byzantine: usize,
}

impl Krum {
    /// Index of the Krum-selected update (exposed for tests/detection).
    pub fn select(&self, updates: &[SparseGrad]) -> Option<usize> {
        if updates.is_empty() {
            return None;
        }
        let n = updates.len();
        let keep = n.saturating_sub(self.assumed_byzantine + 2).max(1);
        let mut best: Option<(f32, usize)> = None;
        for i in 0..n {
            let mut dists: Vec<f32> = (0..n)
                .filter(|&j| j != i)
                .map(|j| updates[i].dist_sq(&updates[j]))
                .collect();
            dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            let score: f32 = dists.iter().take(keep).sum();
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, i));
            }
        }
        best.map(|(_, i)| i)
    }
}

impl Aggregator for Krum {
    fn aggregate(&self, updates: &[SparseGrad], _num_items: usize, k: usize) -> SparseGrad {
        match self.select(updates) {
            Some(i) => {
                let mut out = updates[i].clone();
                out.scale(updates.len() as f32);
                out
            }
            None => SparseGrad::new(k),
        }
    }

    fn name(&self) -> &'static str {
        "krum"
    }
}

/// Multi-Krum: average the `m` best Krum-scored updates, rescaled by `n`.
#[derive(Debug, Clone, Copy)]
pub struct MultiKrum {
    /// Assumed number of byzantine clients (`f`).
    pub assumed_byzantine: usize,
    /// How many top-scored updates to average (`m`).
    pub keep: usize,
}

impl Aggregator for MultiKrum {
    fn aggregate(&self, updates: &[SparseGrad], _num_items: usize, k: usize) -> SparseGrad {
        if updates.is_empty() {
            return SparseGrad::new(k);
        }
        let n = updates.len();
        let neighbors = n.saturating_sub(self.assumed_byzantine + 2).max(1);
        let mut scored: Vec<(f32, usize)> = (0..n)
            .map(|i| {
                let mut dists: Vec<f32> = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| updates[i].dist_sq(&updates[j]))
                    .collect();
                dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
                (dists.iter().take(neighbors).sum(), i)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
        let keep = self.keep.clamp(1, n);
        let mut out = SparseGrad::new(k);
        for &(_, i) in scored.iter().take(keep) {
            out.add_assign(&updates[i]);
        }
        out.scale(n as f32 / keep as f32);
        out
    }

    fn name(&self) -> &'static str {
        "multi-krum"
    }
}

/// Coordinate-wise trimmed mean over the clients touching each item,
/// rescaled by the toucher count.
#[derive(Debug, Clone, Copy)]
pub struct TrimmedMean {
    /// Fraction trimmed from *each* tail (e.g. 0.1 drops the 10 % largest
    /// and 10 % smallest values per coordinate).
    pub trim_fraction: f64,
}

/// Coordinate-wise median over the clients touching each item, rescaled
/// by the toucher count.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordinateMedian;

/// Group each item's rows across updates: `(item, rows, count)`.
fn rows_by_item(updates: &[SparseGrad], k: usize) -> Vec<(u32, Vec<&[f32]>)> {
    let mut map: std::collections::BTreeMap<u32, Vec<&[f32]>> = std::collections::BTreeMap::new();
    for u in updates {
        debug_assert_eq!(u.k(), k);
        for (item, row) in u.iter() {
            map.entry(item).or_default().push(row);
        }
    }
    map.into_iter().collect()
}

impl Aggregator for TrimmedMean {
    fn aggregate(&self, updates: &[SparseGrad], _num_items: usize, k: usize) -> SparseGrad {
        assert!((0.0..0.5).contains(&self.trim_fraction));
        let mut out = SparseGrad::new(k);
        let mut buf = vec![0.0f32; k];
        for (item, rows) in rows_by_item(updates, k) {
            let n = rows.len();
            let trim = ((n as f64) * self.trim_fraction).floor() as usize;
            let trim = trim.min((n - 1) / 2);
            for (d, slot) in buf.iter_mut().enumerate() {
                let vals: Vec<f32> = rows.iter().map(|r| r[d]).collect();
                *slot = stats::trimmed_mean(&vals, trim) * n as f32;
            }
            out.push_sorted(item, &buf);
        }
        out
    }

    fn name(&self) -> &'static str {
        "trimmed-mean"
    }
}

impl Aggregator for CoordinateMedian {
    fn aggregate(&self, updates: &[SparseGrad], _num_items: usize, k: usize) -> SparseGrad {
        let mut out = SparseGrad::new(k);
        let mut buf = vec![0.0f32; k];
        for (item, rows) in rows_by_item(updates, k) {
            let n = rows.len();
            for (d, slot) in buf.iter_mut().enumerate() {
                let vals: Vec<f32> = rows.iter().map(|r| r[d]).collect();
                *slot = stats::median(&vals) * n as f32;
            }
            out.push_sorted(item, &buf);
        }
        out
    }

    fn name(&self) -> &'static str {
        "median"
    }
}

/// Norm filtering: drop whole client updates whose Frobenius norm exceeds
/// `factor ×` the median norm of the round, then sum the survivors.
#[derive(Debug, Clone, Copy)]
pub struct NormBound {
    /// Multiplier over the round's median update norm.
    pub factor: f32,
}

impl Aggregator for NormBound {
    fn aggregate(&self, updates: &[SparseGrad], _num_items: usize, k: usize) -> SparseGrad {
        assert!(self.factor > 0.0);
        let norms: Vec<f32> = updates
            .iter()
            .map(|u| u.frobenius_norm_sq().sqrt())
            .collect();
        let med = stats::median(&norms);
        let cutoff = if med > 0.0 {
            med * self.factor
        } else {
            f32::MAX
        };
        let mut out = SparseGrad::new(k);
        for (u, &n) in updates.iter().zip(norms.iter()) {
            if n <= cutoff {
                out.add_assign(u);
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "norm-bound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad(k: usize, rows: &[(u32, f32)]) -> SparseGrad {
        let mut g = SparseGrad::new(k);
        for &(item, v) in rows {
            g.accumulate(item, 1.0, &vec![v; k]);
        }
        g
    }

    /// Five honest updates near 1.0 on item 0, one byzantine at 100.
    fn honest_plus_outlier() -> Vec<SparseGrad> {
        let mut v: Vec<SparseGrad> = (0..5)
            .map(|i| grad(2, &[(0, 1.0 + 0.01 * i as f32)]))
            .collect();
        v.push(grad(2, &[(0, 100.0)]));
        v
    }

    #[test]
    fn krum_selects_an_honest_update() {
        let updates = honest_plus_outlier();
        let krum = Krum {
            assumed_byzantine: 1,
        };
        let idx = krum.select(&updates).unwrap();
        assert!(idx < 5, "krum picked the byzantine update");
        let agg = krum.aggregate(&updates, 4, 2);
        // Scaled by n=6; honest value ~1.0.
        let got = agg.get(0).unwrap()[0];
        assert!((5.8..6.4).contains(&got), "got {got}");
    }

    /// With `n <= f + 2` the neighbor count clamps to 1 instead of
    /// underflowing; Krum degrades to nearest-neighbor selection but must
    /// stay well-defined and deterministic.
    #[test]
    fn krum_tiny_population_clamps_neighbor_count() {
        let updates = vec![
            grad(2, &[(0, 1.0)]),
            grad(2, &[(0, 1.1)]),
            grad(2, &[(0, 50.0)]),
        ];
        let krum = Krum {
            assumed_byzantine: 2, // n = 3 <= f + 2 = 4
        };
        let idx = krum.select(&updates).unwrap();
        assert!(idx < 2, "nearest-neighbor fallback picked the outlier");
        let agg = krum.aggregate(&updates, 4, 2);
        assert!(agg.get(0).unwrap().iter().all(|x| x.is_finite()));
        // Scaled by n = 3, honest value ~1.0.
        assert!((2.8..3.5).contains(&agg.get(0).unwrap()[0]));
    }

    #[test]
    fn krum_two_updates_selects_deterministically() {
        // n = 2: each update's only neighbor is the other, so both score
        // identically; the strict `<` comparison must keep the first.
        let updates = vec![grad(2, &[(0, 1.0)]), grad(2, &[(0, 2.0)])];
        let krum = Krum {
            assumed_byzantine: 3,
        };
        assert_eq!(krum.select(&updates), Some(0));
    }

    /// All-identical updates score identically everywhere; selection must
    /// break the tie to the first index every time (no ordering
    /// nondeterminism), and Multi-Krum's stable sort must preserve index
    /// order so its average equals the plain sum.
    #[test]
    fn krum_identical_updates_tie_break_is_first_index() {
        let updates = vec![grad(2, &[(3, 1.5)]); 5];
        let krum = Krum {
            assumed_byzantine: 1,
        };
        for _ in 0..10 {
            assert_eq!(krum.select(&updates), Some(0));
        }
        let agg = krum.aggregate(&updates, 4, 2);
        // One identical update scaled by n = 5 == the sum of all five.
        assert!((agg.get(3).unwrap()[0] - 7.5).abs() < 1e-5);
        let mk = MultiKrum {
            assumed_byzantine: 1,
            keep: 3,
        };
        let agg = mk.aggregate(&updates, 4, 2);
        assert!((agg.get(3).unwrap()[0] - 7.5).abs() < 1e-5);
    }

    #[test]
    fn krum_handles_empty_and_single() {
        let krum = Krum {
            assumed_byzantine: 0,
        };
        assert!(krum.select(&[]).is_none());
        let one = vec![grad(2, &[(0, 3.0)])];
        assert_eq!(krum.select(&one), Some(0));
    }

    #[test]
    fn multi_krum_averages_honest_majority() {
        let updates = honest_plus_outlier();
        let mk = MultiKrum {
            assumed_byzantine: 1,
            keep: 3,
        };
        let agg = mk.aggregate(&updates, 4, 2);
        let got = agg.get(0).unwrap()[0];
        assert!((5.8..6.4).contains(&got), "got {got}");
    }

    #[test]
    fn median_suppresses_minority_outlier() {
        let updates = honest_plus_outlier();
        let agg = CoordinateMedian.aggregate(&updates, 4, 2);
        let got = agg.get(0).unwrap()[0];
        // Median of {1.0..1.04, 100} is ~1.015, times 6 touchers.
        assert!((5.9..6.5).contains(&got), "got {got}");
    }

    #[test]
    fn median_cannot_defend_items_where_attackers_are_majority() {
        // The FR weakness: 2 attackers vs 1 honest toucher on item 7.
        let updates = vec![
            grad(2, &[(7, 50.0)]),
            grad(2, &[(7, 50.0)]),
            grad(2, &[(7, 0.1)]),
        ];
        let agg = CoordinateMedian.aggregate(&updates, 8, 2);
        let got = agg.get(7).unwrap()[0];
        assert!(
            got > 100.0,
            "attacker majority should win the median: {got}"
        );
    }

    #[test]
    fn trimmed_mean_drops_tails() {
        let updates = honest_plus_outlier();
        let tm = TrimmedMean { trim_fraction: 0.2 };
        let agg = tm.aggregate(&updates, 4, 2);
        let got = agg.get(0).unwrap()[0];
        assert!((5.8..6.6).contains(&got), "got {got}");
    }

    #[test]
    fn trimmed_mean_with_zero_trim_is_sum() {
        let updates = vec![grad(2, &[(0, 1.0)]), grad(2, &[(0, 3.0)])];
        let tm = TrimmedMean { trim_fraction: 0.0 };
        let agg = tm.aggregate(&updates, 4, 2);
        assert!((agg.get(0).unwrap()[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn norm_bound_filters_oversized_clients() {
        let updates = honest_plus_outlier();
        let nb = NormBound { factor: 3.0 };
        let agg = nb.aggregate(&updates, 4, 2);
        let got = agg.get(0).unwrap()[0];
        // Sum of the five honest updates only.
        assert!((5.0..5.2).contains(&got), "got {got}");
    }

    #[test]
    fn norm_bound_keeps_everything_when_homogeneous() {
        let updates = vec![grad(2, &[(0, 1.0)]); 4];
        let nb = NormBound { factor: 1.5 };
        let agg = nb.aggregate(&updates, 4, 2);
        assert!((agg.get(0).unwrap()[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn aggregators_handle_disjoint_items() {
        let updates = vec![grad(2, &[(1, 2.0)]), grad(2, &[(3, 4.0)])];
        for agg in [
            CoordinateMedian.aggregate(&updates, 8, 2),
            TrimmedMean { trim_fraction: 0.1 }.aggregate(&updates, 8, 2),
        ] {
            // Single toucher per item: robust stat over one value = value.
            assert!((agg.get(1).unwrap()[0] - 2.0).abs() < 1e-5);
            assert!((agg.get(3).unwrap()[0] - 4.0).abs() < 1e-5);
        }
    }
}

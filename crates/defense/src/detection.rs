//! Poisoned-gradient detection heuristics.
//!
//! §V-D of the paper surveys detection in FR and explains why it is hard:
//! honest clients' gradients already "vary widely" (different users,
//! different items, DP noise). These detectors implement the two standard
//! signals anyway, so experiments can quantify exactly how much (or
//! little) they see:
//!
//! * [`NormDetector`] — flags clients whose update norm is an outlier
//!   (z-score over the round);
//! * [`SimilarityDetector`] — flags groups of clients uploading unusually
//!   *similar* updates (coordinated malicious clients pushing the same
//!   target rows look alike; honest clients rarely do).

use fedrec_linalg::{stats, SparseGrad};

/// Per-round detection outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReport {
    /// Per-client anomaly score (higher = more suspicious).
    pub scores: Vec<f32>,
    /// Indices flagged by the detector's threshold.
    pub flagged: Vec<usize>,
}

impl DetectionReport {
    /// Fraction of the given (ground-truth malicious) indices that were
    /// flagged — the detector's recall.
    pub fn recall(&self, malicious: &[usize]) -> f64 {
        if malicious.is_empty() {
            return 0.0;
        }
        let hit = malicious
            .iter()
            .filter(|m| self.flagged.contains(m))
            .count();
        hit as f64 / malicious.len() as f64
    }

    /// Fraction of flagged clients that are actually malicious — the
    /// detector's precision (1.0 when nothing is flagged).
    pub fn precision(&self, malicious: &[usize]) -> f64 {
        if self.flagged.is_empty() {
            return 1.0;
        }
        let hit = self
            .flagged
            .iter()
            .filter(|f| malicious.contains(f))
            .count();
        hit as f64 / self.flagged.len() as f64
    }
}

/// Flags clients whose update Frobenius norm deviates from the round mean
/// by more than `z_threshold` standard deviations.
#[derive(Debug, Clone, Copy)]
pub struct NormDetector {
    /// Z-score threshold (e.g. 3.0).
    pub z_threshold: f32,
}

impl NormDetector {
    /// Score one round of uploads.
    pub fn inspect(&self, updates: &[SparseGrad]) -> DetectionReport {
        let norms: Vec<f32> = updates
            .iter()
            .map(|u| u.frobenius_norm_sq().sqrt())
            .collect();
        let mean = stats::mean(&norms);
        let sd = stats::std_dev(&norms).max(1e-9);
        let scores: Vec<f32> = norms.iter().map(|n| ((n - mean) / sd).abs()).collect();
        let flagged = scores
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > self.z_threshold)
            .map(|(i, _)| i)
            .collect();
        DetectionReport { scores, flagged }
    }
}

/// Flags clients whose update is unusually similar to other clients'
/// updates (cosine over the sparse gradients). Coordinated poisoning
/// concentrates on the same target rows; honest updates mostly don't
/// overlap.
#[derive(Debug, Clone, Copy)]
pub struct SimilarityDetector {
    /// Cosine similarity above which a *pair* counts as suspicious.
    pub cosine_threshold: f32,
    /// Minimum number of suspicious pairs before a client is flagged.
    pub min_pairs: usize,
}

impl SimilarityDetector {
    /// Score one round of uploads.
    pub fn inspect(&self, updates: &[SparseGrad]) -> DetectionReport {
        let n = updates.len();
        let norms: Vec<f32> = updates
            .iter()
            .map(|u| u.frobenius_norm_sq().sqrt())
            .collect();
        let mut suspicious_pairs = vec![0usize; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if norms[i] == 0.0 || norms[j] == 0.0 {
                    continue;
                }
                let cos = updates[i].dot(&updates[j]) / (norms[i] * norms[j]);
                if cos > self.cosine_threshold {
                    suspicious_pairs[i] += 1;
                    suspicious_pairs[j] += 1;
                }
            }
        }
        let scores: Vec<f32> = suspicious_pairs.iter().map(|&c| c as f32).collect();
        let flagged = suspicious_pairs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= self.min_pairs)
            .map(|(i, _)| i)
            .collect();
        DetectionReport { scores, flagged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad(k: usize, rows: &[(u32, f32)]) -> SparseGrad {
        let mut g = SparseGrad::new(k);
        for &(item, v) in rows {
            g.accumulate(item, 1.0, &vec![v; k]);
        }
        g
    }

    #[test]
    fn norm_detector_flags_giant_update() {
        let mut updates: Vec<SparseGrad> = (0..10)
            .map(|i| grad(2, &[(i, 1.0 + 0.05 * i as f32)]))
            .collect();
        updates.push(grad(2, &[(0, 500.0)]));
        let rep = NormDetector { z_threshold: 2.5 }.inspect(&updates);
        assert_eq!(rep.flagged, vec![10]);
        assert_eq!(rep.recall(&[10]), 1.0);
        assert_eq!(rep.precision(&[10]), 1.0);
    }

    #[test]
    fn norm_detector_passes_homogeneous_round() {
        let updates: Vec<SparseGrad> = (0..8).map(|i| grad(2, &[(i, 1.0)])).collect();
        let rep = NormDetector { z_threshold: 3.0 }.inspect(&updates);
        assert!(rep.flagged.is_empty());
    }

    #[test]
    fn norm_detector_misses_clipped_attack() {
        // FedRecAttack-style uploads are clipped to the same C as benign
        // rows: the norm signal vanishes.
        let mut updates: Vec<SparseGrad> = (0..10)
            .map(|i| grad(2, &[(i, 1.0 + 0.05 * i as f32)]))
            .collect();
        updates.push(grad(2, &[(0, 1.02)])); // the "attack"
        let rep = NormDetector { z_threshold: 2.5 }.inspect(&updates);
        assert_eq!(rep.recall(&[10]), 0.0, "clipped attack should evade");
    }

    #[test]
    fn similarity_detector_flags_coordinated_clients() {
        // Three attackers upload near-identical target-row pushes; five
        // honest clients touch disjoint items.
        let mut updates: Vec<SparseGrad> = (0..5).map(|i| grad(3, &[(10 + i, 1.0)])).collect();
        for _ in 0..3 {
            updates.push(grad(3, &[(0, 2.0)]));
        }
        let rep = SimilarityDetector {
            cosine_threshold: 0.95,
            min_pairs: 2,
        }
        .inspect(&updates);
        assert_eq!(rep.flagged, vec![5, 6, 7]);
        assert_eq!(rep.recall(&[5, 6, 7]), 1.0);
    }

    #[test]
    fn similarity_detector_ignores_disjoint_honest_updates() {
        let updates: Vec<SparseGrad> = (0..6).map(|i| grad(3, &[(i, 1.0)])).collect();
        let rep = SimilarityDetector {
            cosine_threshold: 0.9,
            min_pairs: 1,
        }
        .inspect(&updates);
        assert!(rep.flagged.is_empty());
    }

    #[test]
    fn report_precision_with_false_positives() {
        let rep = DetectionReport {
            scores: vec![0.0; 4],
            flagged: vec![0, 1],
        };
        assert_eq!(rep.precision(&[1]), 0.5);
        assert_eq!(rep.recall(&[1, 2]), 0.5);
        assert_eq!(rep.recall(&[]), 0.0);
    }

    #[test]
    fn empty_round_is_clean() {
        let rep = NormDetector { z_threshold: 3.0 }.inspect(&[]);
        assert!(rep.flagged.is_empty());
        let rep = SimilarityDetector {
            cosine_threshold: 0.9,
            min_pairs: 1,
        }
        .inspect(&[]);
        assert!(rep.flagged.is_empty());
        assert_eq!(rep.precision(&[]), 1.0);
    }
}

//! Poisoned-gradient detection heuristics.
//!
//! §V-D of the paper surveys detection in FR and explains why it is hard:
//! honest clients' gradients already "vary widely" (different users,
//! different items, DP noise). These detectors implement the two standard
//! signals anyway, so experiments can quantify exactly how much (or
//! little) they see:
//!
//! * [`NormDetector`] — flags clients whose update norm is an outlier
//!   (z-score over the round);
//! * [`SimilarityDetector`] — flags groups of clients uploading unusually
//!   *similar* updates (coordinated malicious clients pushing the same
//!   target rows look alike; honest clients rarely do).
//!
//! Both implement the round loop's [`Detector`] trait, so either can
//! be attached to a [`DefensePipeline`](fedrec_federated::DefensePipeline)
//! and run *inside* federated training. In-loop, a flagged client's
//! upload is excluded **from that round's aggregation onward** (gated
//! mode), which feeds back into every later round — unlike offline
//! scoring, where the same detector merely grades a captured round of
//! traffic after the fact and training is unaffected. The
//! [`DetectionReport`] type itself lives in `fedrec-federated` (the round
//! loop records one per round) and is re-exported here.

pub use fedrec_federated::defense::{DetectionReport, Detector};
use fedrec_linalg::{stats, SparseGrad};

/// Flags clients whose update Frobenius norm is an outlier for the round.
///
/// By default only the *high* side is flagged (`z > z_threshold`):
/// poisoning has to inject signal, so attack uploads sit at or above the
/// benign norm range, while unusually *small* norms are ordinary honest
/// users with few interactions (or a quiet round) — flagging them is a
/// guaranteed false positive. Set [`two_sided`](Self::two_sided) to also
/// flag the low side (`|z| > z_threshold`), the historical behavior.
#[derive(Debug, Clone, Copy)]
pub struct NormDetector {
    /// Z-score threshold (e.g. 3.0).
    pub z_threshold: f32,
    /// Flag `|z| > z_threshold` instead of `z > z_threshold`.
    pub two_sided: bool,
}

impl NormDetector {
    /// One-sided (high-norm) detector with the given threshold.
    pub fn new(z_threshold: f32) -> Self {
        Self {
            z_threshold,
            two_sided: false,
        }
    }

    /// Score one round of uploads.
    pub fn inspect(&self, updates: &[SparseGrad]) -> DetectionReport {
        let norms: Vec<f32> = updates
            .iter()
            .map(|u| u.frobenius_norm_sq().sqrt())
            .collect();
        let mean = stats::mean(&norms);
        let sd = stats::std_dev(&norms).max(1e-9);
        let scores: Vec<f32> = norms
            .iter()
            .map(|n| {
                let z = (n - mean) / sd;
                if self.two_sided {
                    z.abs()
                } else {
                    z
                }
            })
            .collect();
        let flagged = scores
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > self.z_threshold)
            .map(|(i, _)| i)
            .collect();
        DetectionReport { scores, flagged }
    }
}

impl Default for NormDetector {
    fn default() -> Self {
        Self::new(3.0)
    }
}

impl Detector for NormDetector {
    fn inspect(&self, updates: &[SparseGrad]) -> DetectionReport {
        NormDetector::inspect(self, updates)
    }

    fn name(&self) -> &'static str {
        "norm"
    }
}

/// Flags clients whose update is unusually similar to other clients'
/// updates (cosine over the sparse gradients). Coordinated poisoning
/// concentrates on the same target rows; honest updates mostly don't
/// overlap.
#[derive(Debug, Clone, Copy)]
pub struct SimilarityDetector {
    /// Cosine similarity above which a *pair* counts as suspicious.
    pub cosine_threshold: f32,
    /// Minimum number of suspicious pairs before a client is flagged.
    pub min_pairs: usize,
}

impl SimilarityDetector {
    /// Score one round of uploads.
    pub fn inspect(&self, updates: &[SparseGrad]) -> DetectionReport {
        let n = updates.len();
        let norms: Vec<f32> = updates
            .iter()
            .map(|u| u.frobenius_norm_sq().sqrt())
            .collect();
        let mut suspicious_pairs = vec![0usize; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if norms[i] == 0.0 || norms[j] == 0.0 {
                    continue;
                }
                let cos = updates[i].dot(&updates[j]) / (norms[i] * norms[j]);
                if cos > self.cosine_threshold {
                    suspicious_pairs[i] += 1;
                    suspicious_pairs[j] += 1;
                }
            }
        }
        let scores: Vec<f32> = suspicious_pairs.iter().map(|&c| c as f32).collect();
        let flagged = suspicious_pairs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= self.min_pairs)
            .map(|(i, _)| i)
            .collect();
        DetectionReport { scores, flagged }
    }
}

impl Detector for SimilarityDetector {
    fn inspect(&self, updates: &[SparseGrad]) -> DetectionReport {
        SimilarityDetector::inspect(self, updates)
    }

    fn name(&self) -> &'static str {
        "similarity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad(k: usize, rows: &[(u32, f32)]) -> SparseGrad {
        let mut g = SparseGrad::new(k);
        for &(item, v) in rows {
            g.accumulate(item, 1.0, &vec![v; k]);
        }
        g
    }

    #[test]
    fn norm_detector_flags_giant_update() {
        let mut updates: Vec<SparseGrad> = (0..10)
            .map(|i| grad(2, &[(i, 1.0 + 0.05 * i as f32)]))
            .collect();
        updates.push(grad(2, &[(0, 500.0)]));
        let rep = NormDetector::new(2.5).inspect(&updates);
        assert_eq!(rep.flagged, vec![10]);
        assert_eq!(rep.recall(&[10]), 1.0);
        assert_eq!(rep.precision(&[10]), 1.0);
    }

    #[test]
    fn norm_detector_passes_homogeneous_round() {
        let updates: Vec<SparseGrad> = (0..8).map(|i| grad(2, &[(i, 1.0)])).collect();
        let rep = NormDetector::new(3.0).inspect(&updates);
        assert!(rep.flagged.is_empty());
    }

    #[test]
    fn norm_detector_misses_clipped_attack() {
        // FedRecAttack-style uploads are clipped to the same C as benign
        // rows: the norm signal vanishes.
        let mut updates: Vec<SparseGrad> = (0..10)
            .map(|i| grad(2, &[(i, 1.0 + 0.05 * i as f32)]))
            .collect();
        updates.push(grad(2, &[(0, 1.02)])); // the "attack"
        let rep = NormDetector::new(2.5).inspect(&updates);
        assert_eq!(rep.recall(&[10]), 0.0, "clipped attack should evade");
    }

    /// Regression test for the one-sidedness fix: a low-interaction honest
    /// client uploads a tiny-but-normal gradient. The old `.abs()` z-score
    /// flagged it as an attacker; the one-sided default must not.
    #[test]
    fn norm_detector_spares_low_interaction_honest_client() {
        // Eleven ordinary clients near norm ~1.4, one honest client with a
        // single interaction (norm ~0.014).
        let mut updates: Vec<SparseGrad> = (0..11).map(|i| grad(2, &[(i, 1.0)])).collect();
        updates.push(grad(2, &[(11, 0.01)]));
        let one_sided = NormDetector::new(3.0);
        let rep = one_sided.inspect(&updates);
        assert!(
            rep.flagged.is_empty(),
            "low-norm honest client must not be flagged: {:?}",
            rep.flagged
        );
        // The historical two-sided variant exhibits the bug: the small
        // norm is a >3σ *downward* outlier and gets flagged.
        let two_sided = NormDetector {
            two_sided: true,
            ..one_sided
        };
        let rep = two_sided.inspect(&updates);
        assert_eq!(
            rep.flagged,
            vec![11],
            "two-sided variant should flag the low side"
        );
    }

    #[test]
    fn norm_detector_default_is_one_sided() {
        let d = NormDetector::default();
        assert!(!d.two_sided);
        assert_eq!(d.z_threshold, 3.0);
    }

    #[test]
    fn similarity_detector_flags_coordinated_clients() {
        // Three attackers upload near-identical target-row pushes; five
        // honest clients touch disjoint items.
        let mut updates: Vec<SparseGrad> = (0..5).map(|i| grad(3, &[(10 + i, 1.0)])).collect();
        for _ in 0..3 {
            updates.push(grad(3, &[(0, 2.0)]));
        }
        let rep = SimilarityDetector {
            cosine_threshold: 0.95,
            min_pairs: 2,
        }
        .inspect(&updates);
        assert_eq!(rep.flagged, vec![5, 6, 7]);
        assert_eq!(rep.recall(&[5, 6, 7]), 1.0);
    }

    #[test]
    fn similarity_detector_ignores_disjoint_honest_updates() {
        let updates: Vec<SparseGrad> = (0..6).map(|i| grad(3, &[(i, 1.0)])).collect();
        let rep = SimilarityDetector {
            cosine_threshold: 0.9,
            min_pairs: 1,
        }
        .inspect(&updates);
        assert!(rep.flagged.is_empty());
    }

    #[test]
    fn report_precision_with_false_positives() {
        let rep = DetectionReport {
            scores: vec![0.0; 4],
            flagged: vec![0, 1],
        };
        assert_eq!(rep.precision(&[1]), 0.5);
        assert_eq!(rep.recall(&[1, 2]), 0.5);
    }

    /// Regression test for the empty-set convention fix: with zero
    /// malicious clients there is nothing to miss, so recall is vacuously
    /// perfect (mirroring precision's empty-flagged convention). The old
    /// 0.0 dragged down every `ρ = 0` baseline row of grid averages.
    #[test]
    fn recall_is_vacuously_perfect_without_malicious_clients() {
        let rep = DetectionReport {
            scores: vec![0.0; 4],
            flagged: vec![2],
        };
        assert_eq!(rep.recall(&[]), 1.0);
    }

    /// The sorted-lookup rewrite must not care about input order.
    #[test]
    fn metrics_are_order_insensitive() {
        let rep = DetectionReport {
            scores: vec![0.0; 6],
            flagged: vec![5, 1, 3],
        };
        assert_eq!(rep.precision(&[3, 5, 0]), rep.precision(&[0, 5, 3]));
        assert_eq!(rep.recall(&[5, 0]), 0.5);
        assert_eq!(rep.precision(&[1, 3, 5]), 1.0);
    }

    #[test]
    fn empty_round_is_clean() {
        let rep = NormDetector::new(3.0).inspect(&[]);
        assert!(rep.flagged.is_empty());
        let rep = SimilarityDetector {
            cosine_threshold: 0.9,
            min_pairs: 1,
        }
        .inspect(&[]);
        assert!(rep.flagged.is_empty());
        assert_eq!(rep.precision(&[]), 1.0);
    }

    #[test]
    fn detectors_expose_trait_names() {
        let n: &dyn Detector = &NormDetector::new(3.0);
        let s: &dyn Detector = &SimilarityDetector {
            cosine_threshold: 0.9,
            min_pairs: 2,
        };
        assert_eq!(n.name(), "norm");
        assert_eq!(s.name(), "similarity");
    }
}

//! Defenses for federated recommendation.
//!
//! §VI of the paper points at two defense families as future work:
//! byzantine-robust aggregation (Krum, trimmed mean, median — citing Yin
//! et al. \[52\]) and poisoned-gradient detection \[51\]. This crate
//! implements both so the repository can *measure* how FedRecAttack fares
//! against them (the `repro matrix` scenario grid, the
//! `ablation_defenses` bench and the `defense_evaluation` example):
//!
//! * [`aggregation`] — [`aggregation::Krum`], [`aggregation::MultiKrum`],
//!   [`aggregation::TrimmedMean`], [`aggregation::CoordinateMedian`] and
//!   [`aggregation::NormBound`], all implementing the federated server's
//!   [`fedrec_federated::server::Aggregator`] trait.
//! * [`detection`] — gradient-norm and cosine-similarity anomaly scoring
//!   over per-client uploads, implementing the round loop's
//!   [`fedrec_federated::defense::Detector`] trait.
//!
//! # In-loop exclusion vs. offline scoring
//!
//! Every detector here can be used two ways, and the results mean
//! different things:
//!
//! * **Offline scoring** — capture one round of uploads, call
//!   `inspect`, read precision/recall. Training is untouched; this
//!   measures the detector's *signal* in isolation (the `repro detection`
//!   table).
//! * **In-loop exclusion** — attach the detector to a
//!   [`DefensePipeline`] in gated mode and hand that to
//!   [`fedrec_federated::Simulation::with_defense`]. Now a flag in round
//!   `t` removes that upload before aggregation, which changes
//!   `V^{t+1}` and therefore everything the detector (and the attacker)
//!   sees in round `t+1`. False positives stop being cosmetic: each one
//!   deletes a benign client's contribution for the round, trading
//!   recommendation accuracy for robustness. The per-round
//!   [`fedrec_federated::RoundDefense`] records in the training history
//!   capture exactly that trajectory. A pipeline in *monitored* mode
//!   records the same trajectory without excluding anyone, so a run can
//!   be graded without being perturbed.
//!
//! A practical subtlety the paper calls out (§V-D, §VI): in federated
//! *recommendation* the honest gradients themselves vary wildly across
//! clients (different users touch different items with different
//! intensity), so coordinate-wise defenses that work in homogeneous
//! classification FL are far weaker here. The tests below encode both
//! sides: defenses neutralize crude large-norm attacks, yet leave
//! norm-bounded FedRecAttack-style uploads largely intact.

#![warn(missing_docs)]

pub mod aggregation;
pub mod detection;

pub use aggregation::{CoordinateMedian, Krum, MultiKrum, NormBound, TrimmedMean};
pub use detection::{DetectionReport, Detector, NormDetector, SimilarityDetector};
pub use fedrec_federated::defense::DefensePipeline;

//! Defenses for federated recommendation.
//!
//! §VI of the paper points at two defense families as future work:
//! byzantine-robust aggregation (Krum, trimmed mean, median — citing Yin
//! et al. \[52\]) and poisoned-gradient detection \[51\]. This crate
//! implements both so the repository can *measure* how FedRecAttack fares
//! against them (the `ablation_defenses` bench and the
//! `defense_evaluation` example):
//!
//! * [`aggregation`] — [`aggregation::Krum`], [`aggregation::MultiKrum`],
//!   [`aggregation::TrimmedMean`], [`aggregation::CoordinateMedian`] and
//!   [`aggregation::NormBound`], all implementing the federated server's
//!   [`fedrec_federated::server::Aggregator`] trait.
//! * [`detection`] — gradient-norm and cosine-similarity anomaly scoring
//!   over per-client uploads.
//!
//! A practical subtlety the paper calls out (§V-D, §VI): in federated
//! *recommendation* the honest gradients themselves vary wildly across
//! clients (different users touch different items with different
//! intensity), so coordinate-wise defenses that work in homogeneous
//! classification FL are far weaker here. The tests below encode both
//! sides: defenses neutralize crude large-norm attacks, yet leave
//! norm-bounded FedRecAttack-style uploads largely intact.

#![warn(missing_docs)]

pub mod aggregation;
pub mod detection;

pub use aggregation::{CoordinateMedian, Krum, MultiKrum, NormBound, TrimmedMean};
pub use detection::{DetectionReport, NormDetector, SimilarityDetector};

//! # fedrecattack
//!
//! A from-scratch Rust reproduction of **"FedRecAttack: Model Poisoning
//! Attack to Federated Recommendation"** (Rong et al., ICDE 2022):
//! the federated matrix-factorization recommender the paper targets, the
//! FedRecAttack adversary itself, every baseline attack the paper
//! compares against, byzantine-robust defenses, and a harness that
//! regenerates every table and figure of the evaluation section.
//!
//! This crate is a facade: it re-exports the workspace's public API under
//! one roof. The pieces:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`linalg`] | `fedrec-linalg` | matrices, RNG, sparse gradients |
//! | [`data`] | `fedrec-data` | datasets, splits, public views, loaders, synthetic generators |
//! | [`recsys`] | `fedrec-recsys` | MF + BPR (manual gradients), top-K, metrics |
//! | [`federated`] | `fedrec-federated` | server/client simulation, DP noise, adversary hook |
//! | [`attack`] | `fedrec-attack` | **FedRecAttack** (the paper's contribution) |
//! | [`baselines`] | `fedrec-baselines` | Random/Bandwagon/Popular, EB, PipAttack, P1–P4 |
//! | [`defense`] | `fedrec-defense` | Krum, trimmed mean, median, norm bound, detectors |
//! | [`ncf`] | `fedrec-ncf` | neural CF extension: learnable Θ, federated MLP, V-/Θ-poisoning |
//! | [`experiments`] | `fedrec-experiments` | Table II–IX and Fig. 3 runners, the attack×defense×ρ scenario matrix, `repro` CLI |
//!
//! ## Quickstart
//!
//! ```
//! use fedrecattack::prelude::*;
//!
//! // 1. A dataset (synthetic stand-in for MovieLens-100K; loaders for
//! //    the real files live in `data::loader`).
//! let data = SyntheticConfig::smoke().generate(7);
//! let (train, test) = leave_one_out(&data, 1);
//!
//! // 2. The attacker's world: ξ = 5 % public interactions, one cold
//! //    target item, ρ = 5 % malicious clients.
//! let public = PublicView::sample(&train, 0.05, 2);
//! let targets = train.coldest_items(1);
//! let malicious = train.num_users() / 20;
//! let attack = FedRecAttack::new(AttackConfig::new(targets.clone()), public, malicious);
//!
//! // 3. Run federated training under attack.
//! let fed = FedConfig { epochs: 10, ..FedConfig::smoke() };
//! let mut sim = Simulation::new(&train, fed, Box::new(attack), malicious);
//! sim.run(None);
//!
//! // 4. Measure the damage.
//! let eval = Evaluator::new(&train, &test, &targets, 3);
//! let model = MfModel::from_factors(sim.user_factors(), sim.items().clone());
//! let report = eval.evaluate(&model, &train, &test);
//! println!("ER@10 after attack: {:.4}", report.attack.er_at_10);
//! ```

#![warn(missing_docs)]

pub use fedrec_attack as attack;
pub use fedrec_baselines as baselines;
pub use fedrec_data as data;
pub use fedrec_defense as defense;
pub use fedrec_experiments as experiments;
pub use fedrec_federated as federated;
pub use fedrec_linalg as linalg;
pub use fedrec_ncf as ncf;
pub use fedrec_recsys as recsys;

/// The names most programs need, in one import.
pub mod prelude {
    pub use fedrec_attack::{AttackConfig, FedRecAttack};
    pub use fedrec_baselines::{build_adversary, AttackMethod};
    pub use fedrec_data::split::leave_one_out;
    pub use fedrec_data::synthetic::SyntheticConfig;
    pub use fedrec_data::{Dataset, PublicView};
    pub use fedrec_defense::{
        CoordinateMedian, DefensePipeline, DetectionReport, Detector, Krum, NormBound,
        NormDetector, SimilarityDetector, TrimmedMean,
    };
    pub use fedrec_federated::{Adversary, FedConfig, NoAttack, RoundDefense, Simulation};
    pub use fedrec_linalg::{Matrix, SeededRng, SparseGrad};
    pub use fedrec_recsys::eval::Evaluator;
    pub use fedrec_recsys::MfModel;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let data = SyntheticConfig::smoke().generate(1);
        assert!(data.num_users() > 0);
        let _ = FedConfig::default();
        let _ = AttackMethod::parse("fedrecattack");
    }
}

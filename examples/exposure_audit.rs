//! Platform-operator scenario: what does a promotion attack look like in
//! the catalog-health dashboard?
//!
//! A real platform doesn't see ER@K of the attacker's secret target set —
//! it sees aggregate dashboards. This example trains clean and attacked
//! models and prints the operator-visible metrics: catalog coverage,
//! exposure Gini, precision/recall on held-out interactions, and the
//! top-5 most-recommended items. The attack's fingerprint: a formerly
//! dead item storms the most-recommended chart and the Gini ticks up,
//! while precision barely moves — stealthy to accuracy monitoring,
//! visible to exposure auditing.
//!
//! Run with: `cargo run --release --example exposure_audit`

use fedrecattack::prelude::*;
use fedrecattack::recsys::ranking;

fn audit(model: &MfModel, train: &Dataset, test: &fedrecattack::data::split::TestSet) {
    let num_items = train.num_items();
    let relevant: Vec<Vec<u32>> = (0..train.num_users())
        .map(|u| test[u].map(|t| vec![t]).unwrap_or_default())
        .collect();
    let dash = ranking::dashboard(
        train.num_users(),
        num_items,
        10,
        |u, out| model.scores_for_user(u, out),
        |u| train.user_items(u),
        |u| relevant[u].as_slice(),
    );
    // Count per-item recommendations for the leaderboard.
    let mut counts = vec![0u32; num_items];
    let mut scores = vec![0.0f32; num_items];
    for u in 0..train.num_users() {
        model.scores_for_user(u, &mut scores);
        for v in fedrecattack::recsys::topk::top_k_excluding(&scores, train.user_items(u), 10) {
            counts[v as usize] += 1;
        }
    }
    let mut leaderboard: Vec<(u32, u32)> = counts
        .iter()
        .enumerate()
        .map(|(v, &c)| (v as u32, c))
        .collect();
    leaderboard.sort_by_key(|&(v, c)| (std::cmp::Reverse(c), v));

    println!(
        "  precision@10 {:.4}   recall@10 {:.4}   coverage {:.3}   gini {:.3}",
        dash.precision, dash.recall, dash.coverage, dash.gini
    );
    print!("  most recommended: ");
    for (v, c) in leaderboard.iter().take(5) {
        let pop = train.item_popularity()[*v as usize];
        print!("#{v}({c} lists, {pop} real interactions)  ");
    }
    println!();
}

fn main() {
    let data = SyntheticConfig::smoke().generate(7);
    let (train, test) = leave_one_out(&data, 1);
    let targets = train.coldest_items(1);
    let fed = FedConfig {
        epochs: 60,
        ..FedConfig::smoke()
    };

    let mut clean = Simulation::new(&train, fed, Box::new(NoAttack), 0);
    clean.run(None);
    let clean_model = MfModel::from_factors(clean.user_factors(), clean.items().clone());

    let malicious = train.num_users() / 20;
    let public = PublicView::sample(&train, 0.05, 2);
    let attack = FedRecAttack::new(AttackConfig::new(targets.clone()), public, malicious);
    let mut attacked = Simulation::new(&train, fed, Box::new(attack), malicious);
    attacked.run(None);
    let attacked_model = MfModel::from_factors(attacked.user_factors(), attacked.items().clone());

    println!(
        "target item: #{} ({} real interactions)\n",
        targets[0],
        train.item_popularity()[targets[0] as usize]
    );
    println!("clean model:");
    audit(&clean_model, &train, &test);
    println!("\nattacked model (rho=5%, xi=5%):");
    audit(&attacked_model, &train, &test);
    println!(
        "\nFingerprint: item #{} tops the attacked leaderboard with almost \
         no real interactions behind it — exposure auditing sees what \
         loss/accuracy monitoring misses.",
        targets[0]
    );
}

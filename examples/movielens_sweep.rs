//! Movie-recommendation scenario: how much prior knowledge and how many
//! malicious users does the attacker actually need?
//!
//! Reproduces the spirit of Tables III and IV on the MovieLens-100K-like
//! dataset: sweeps the proportion of public interactions ξ and the
//! proportion of malicious users ρ independently, printing ER@10 for
//! every point. The paper's headline — the attack needs only a sliver of
//! public data but a critical mass (~3 %) of malicious clients — shows up
//! directly in the output.
//!
//! Run with: `cargo run --release --example movielens_sweep`

use fedrecattack::baselines::registry::{build_adversary, AttackEnv};
use fedrecattack::prelude::*;

fn er10_for(train: &Dataset, test: &fedrecattack::data::split::TestSet, xi: f64, rho: f64) -> f64 {
    let targets = train.coldest_items(1);
    let num_malicious = ((train.num_users() as f64) * rho).round() as usize;
    let env = AttackEnv::over_dataset(train, &targets)
        .malicious(num_malicious)
        .kappa(60)
        .k(16)
        .seed(13)
        .public(xi, 11);
    let adversary = build_adversary(AttackMethod::FedRecAttack, &env);
    let fed = FedConfig {
        epochs: 60,
        ..FedConfig::smoke()
    };
    let mut sim = Simulation::new(train, fed, adversary, num_malicious);
    sim.run(None);
    let evaluator = Evaluator::new(train, test, &targets, 17);
    let model = MfModel::from_factors(sim.user_factors(), sim.items().clone());
    evaluator.evaluate(&model, train, test).attack.er_at_10
}

fn main() {
    let data = SyntheticConfig::smoke().generate(7);
    let (train, test) = leave_one_out(&data, 1);

    println!("== sweep xi (public-interaction proportion), rho fixed at 5% ==");
    for xi in [0.01, 0.02, 0.05, 0.10, 0.25] {
        let er = er10_for(&train, &test, xi, 0.05);
        println!("  xi = {:>5.1}%   ER@10 = {er:.4}", xi * 100.0);
    }

    println!("\n== sweep rho (malicious-user proportion), xi fixed at 5% ==");
    for rho in [0.01, 0.02, 0.03, 0.05, 0.10] {
        let er = er10_for(&train, &test, 0.05, rho);
        println!("  rho = {:>4.1}%   ER@10 = {er:.4}", rho * 100.0);
    }

    println!(
        "\nPattern to look for (mirrors paper Tables III & IV): ER@10 \
         saturates quickly in xi but needs rho past a critical mass."
    );
}

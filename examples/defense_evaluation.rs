//! Defender's-eye view: do byzantine-robust aggregation or anomaly
//! detection stop FedRecAttack?
//!
//! §VI of the paper leaves defenses as future work and predicts they
//! will struggle because honest FR gradients already vary wildly. This
//! example measures that prediction:
//!
//! 1. runs FedRecAttack against five aggregation rules (sum, Krum,
//!    trimmed mean, coordinate median, norm filtering) and prints the
//!    surviving exposure ratio and the collateral accuracy cost;
//! 2. replays one round of uploads through the norm and similarity
//!    detectors and prints their precision/recall at flagging the
//!    malicious clients (offline scoring — training is untouched);
//! 3. attaches the similarity detector to the round loop itself
//!    (`DefensePipeline::gated`): flagged uploads are excluded from
//!    aggregation as training runs, and the per-round detection
//!    trajectory lands in the training history.
//!
//! Run with: `cargo run --release --example defense_evaluation`
//!
//! The full attack × defense × ρ grid version of this example is the
//! `repro matrix` subcommand.

use fedrecattack::defense::{DefensePipeline, NormDetector, SimilarityDetector};
use fedrecattack::federated::adversary::{Adversary, RoundCtx};
use fedrecattack::federated::client::BenignClient;
use fedrecattack::federated::server::{Aggregator, SumAggregator};
use fedrecattack::prelude::*;

fn main() {
    let data = SyntheticConfig::smoke().generate(7);
    let (train, test) = leave_one_out(&data, 1);
    let targets = train.coldest_items(1);
    let rho = 0.05;
    let num_malicious = ((train.num_users() as f64) * rho).round() as usize;
    let fed = FedConfig {
        epochs: 60,
        ..FedConfig::smoke()
    };
    let evaluator = Evaluator::new(&train, &test, &targets, 3);

    println!("== 1. robust aggregation vs FedRecAttack (rho = 5%) ==\n");
    println!("aggregation        ER@10     HR@10");
    println!("------------------------------------");
    let aggregators: Vec<(&str, Box<dyn Aggregator>)> = vec![
        ("sum (no defense)", Box::new(SumAggregator)),
        (
            "krum",
            Box::new(Krum {
                assumed_byzantine: num_malicious,
            }),
        ),
        (
            "trimmed-mean 10%",
            Box::new(TrimmedMean { trim_fraction: 0.1 }),
        ),
        ("median", Box::new(CoordinateMedian)),
        ("norm-bound 3x", Box::new(NormBound { factor: 3.0 })),
    ];
    for (name, agg) in aggregators {
        let public = PublicView::sample(&train, 0.05, 2);
        let attack = FedRecAttack::new(AttackConfig::new(targets.clone()), public, num_malicious);
        let mut sim =
            Simulation::with_aggregator(&train, fed, Box::new(attack), num_malicious, agg);
        sim.run(None);
        let model = MfModel::from_factors(sim.user_factors(), sim.items().clone());
        let rep = evaluator.evaluate(&model, &train, &test);
        println!(
            "{name:<18} {:>6.4}   {:>6.4}",
            rep.attack.er_at_10, rep.hr_at_10
        );
    }

    println!("\n== 2. per-round detection of poisoned uploads ==\n");
    // Build one round's uploads by hand: benign clients plus the attack.
    let mut rng = SeededRng::new(41);
    let items = Matrix::random_normal(train.num_items(), fed.k, 0.0, 0.1, &mut rng);
    let mut uploads = Vec::new();
    for u in 0..train.num_users() {
        let mut c = BenignClient::new(
            u,
            train.user_items(u).to_vec(),
            train.num_items(),
            fed.k,
            &mut rng,
        );
        if let Some(up) = c.local_round(&items, fed.lr, 0.0, fed.clip_norm, 0.0) {
            uploads.push(up.item_grads);
        }
    }
    let benign_count = uploads.len();
    let public = PublicView::sample(&train, 0.05, 2);
    let mut attack = FedRecAttack::new(AttackConfig::new(targets.clone()), public, num_malicious);
    let selected: Vec<usize> = (0..num_malicious).collect();
    let ctx = RoundCtx {
        round: 0,
        lr: fed.lr,
        clip_norm: fed.clip_norm,
        selected_malicious: &selected,
    };
    uploads.extend(attack.poison(&items, &ctx, &mut rng));
    let malicious_idx: Vec<usize> = (benign_count..uploads.len()).collect();

    let norm = NormDetector::new(3.0).inspect(&uploads);
    let sim = SimilarityDetector {
        cosine_threshold: 0.9,
        min_pairs: 2,
    }
    .inspect(&uploads);
    println!("detector     flagged   recall   precision");
    println!("-------------------------------------------");
    println!(
        "norm z>3     {:>7}   {:>6.2}   {:>9.2}",
        norm.flagged.len(),
        norm.recall(&malicious_idx),
        norm.precision(&malicious_idx)
    );
    println!(
        "similarity   {:>7}   {:>6.2}   {:>9.2}",
        sim.flagged.len(),
        sim.recall(&malicious_idx),
        sim.precision(&malicious_idx)
    );
    println!(
        "\nReading: norm-based detection sees nothing (uploads are clipped \
         to the same C as benign rows); similarity clustering is the more \
         promising signal — the paper's suggested future work."
    );

    println!("\n== 3. the same detector *inside* the round loop ==\n");
    let public = PublicView::sample(&train, 0.05, 2);
    let attack = FedRecAttack::new(AttackConfig::new(targets.clone()), public, num_malicious);
    let pipeline = DefensePipeline::gated(
        Box::new(SimilarityDetector {
            cosine_threshold: 0.9,
            min_pairs: 2,
        }),
        Box::new(SumAggregator),
    );
    let mut sim = Simulation::with_defense(&train, fed, Box::new(attack), num_malicious, pipeline);
    let history = sim.run(None);
    let model = MfModel::from_factors(sim.user_factors(), sim.items().clone());
    let rep = evaluator.evaluate(&model, &train, &test);
    println!(
        "detector-gated sum: ER@10 {:.4}  HR@10 {:.4}  ({} uploads excluded \
         over {} rounds, mean per-round recall {:.2})",
        rep.attack.er_at_10,
        rep.hr_at_10,
        history.total_excluded(),
        history.defense.len(),
        history.mean_detector_recall().unwrap_or(1.0),
    );
}

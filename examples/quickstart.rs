//! Quickstart: attack a federated recommender in ~50 lines.
//!
//! Trains a federated MF recommender twice on the same (synthetic
//! MovieLens-100K-like) data — once clean, once under FedRecAttack with
//! ρ = 5 % malicious clients and ξ = 5 % public interactions — and prints
//! the exposure ratio of a cold target item plus the recommendation
//! accuracy for both runs.
//!
//! Run with: `cargo run --release --example quickstart`

use fedrecattack::prelude::*;

fn main() {
    // A miniature dataset with MovieLens-like statistics; swap in
    // `fedrecattack::data::loader::load_movielens_100k(path)` if you have
    // the real file.
    let data = SyntheticConfig::smoke().generate(7);
    let (train, test) = leave_one_out(&data, 1);
    let targets = train.coldest_items(1);
    println!(
        "dataset: {} users, {} items, {} interactions; target item {:?}",
        train.num_users(),
        train.num_items(),
        train.num_interactions(),
        targets
    );

    let fed = FedConfig {
        epochs: 60,
        ..FedConfig::smoke()
    };
    let evaluator = Evaluator::new(&train, &test, &targets, 3);

    // Clean run.
    let mut clean = Simulation::new(&train, fed, Box::new(NoAttack), 0);
    clean.run(None);
    let clean_model = MfModel::from_factors(clean.user_factors(), clean.items().clone());
    let clean_rep = evaluator.evaluate(&clean_model, &train, &test);

    // Attacked run: the attacker sees 5 % of interactions (likes,
    // follows, comments...) and controls 5 % of the clients.
    let malicious = train.num_users() / 20;
    let public = PublicView::sample(&train, 0.05, 2);
    let attack = FedRecAttack::new(AttackConfig::new(targets.clone()), public, malicious);
    let mut sim = Simulation::new(&train, fed, Box::new(attack), malicious);
    sim.run(None);
    let model = MfModel::from_factors(sim.user_factors(), sim.items().clone());
    let rep = evaluator.evaluate(&model, &train, &test);

    println!("\n               clean      attacked");
    println!(
        "ER@10      {:>8.4}   {:>8.4}   <- target exposure",
        clean_rep.attack.er_at_10, rep.attack.er_at_10
    );
    println!(
        "NDCG@10    {:>8.4}   {:>8.4}",
        clean_rep.attack.ndcg_at_10, rep.attack.ndcg_at_10
    );
    println!(
        "HR@10      {:>8.4}   {:>8.4}   <- accuracy (side effects)",
        clean_rep.hr_at_10, rep.hr_at_10
    );
    println!(
        "\nThe attack pushed a zero-exposure item into ~{:.0}% of users' \
         top-10 lists while recommendation accuracy barely moved.",
        rep.attack.er_at_10 * 100.0
    );
}

//! The stealthiness story (Fig. 3): watch the loss and accuracy curves.
//!
//! Detection in practice means a human (or a monitor) watching training
//! loss and offline accuracy. This example prints both curves, epoch by
//! epoch, for a clean run and an attacked run side by side — the
//! console version of the paper's Fig. 3. The attacked curves should be
//! nearly indistinguishable from the clean ones even while the target's
//! exposure climbs to near-total.
//!
//! Run with: `cargo run --release --example stealthiness`

use fedrecattack::experiments::{fig3_side_effects, DatasetId, Scale};

fn main() {
    let table = fig3_side_effects(Scale::Smoke, DatasetId::Ml100k, 10, 7);

    // Reshape the long-format table into side-by-side columns.
    let arm_rows = |arm: &str| -> Vec<(usize, f64, Option<f64>)> {
        table
            .rows
            .iter()
            .filter(|r| r[0] == arm)
            .map(|r| {
                (
                    r[1].parse::<usize>().unwrap(),
                    r[2].parse::<f64>().unwrap(),
                    r[3].parse::<f64>().ok(),
                )
            })
            .collect()
    };
    let clean = arm_rows("none");
    let attacked = arm_rows("rho=5%");

    println!("epoch |   loss(clean)  loss(rho=5%) |  HR(clean)  HR(rho=5%)");
    println!("------+------------------------------+------------------------");
    for ((e, lc, hc), (_, la, ha)) in clean.iter().zip(attacked.iter()) {
        let hr = match (hc, ha) {
            (Some(c), Some(a)) => format!("{c:>9.4}  {a:>9.4}"),
            _ => "        -          -".to_string(),
        };
        if e % 5 == 0 || hc.is_some() {
            println!("{e:>5} | {lc:>12.2}  {la:>12.2} | {hr}");
        }
    }
    println!(
        "\nIf you can't tell the columns apart, the attack is stealthy — \
         that is §V-D's argument for why accuracy-based monitoring fails \
         against FedRecAttack."
    );
}

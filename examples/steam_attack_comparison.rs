//! Game-platform scenario: every attack, head to head, on sparse data.
//!
//! Steam-like play data is much sparser than movie ratings (99.4 % vs
//! 93.7 % in Table II), and the paper finds sparse catalogs *easier* to
//! attack — even crude shilling moves the needle, and FedRecAttack
//! saturates. This example runs the whole attack registry on the
//! Steam-like miniature and prints a leaderboard.
//!
//! Run with: `cargo run --release --example steam_attack_comparison`

use fedrecattack::baselines::registry::{build_adversary, AttackEnv};
use fedrecattack::prelude::*;

fn main() {
    let data = SyntheticConfig::smoke_sparse().generate(5);
    let (train, test) = leave_one_out(&data, 1);
    let targets = train.coldest_items(1);
    let stats = train.stats();
    println!(
        "steam-like dataset: {} users, {} items, sparsity {:.2}%\n",
        stats.num_users,
        stats.num_items,
        stats.sparsity * 100.0
    );

    let methods = [
        AttackMethod::None,
        AttackMethod::Random,
        AttackMethod::Bandwagon,
        AttackMethod::Popular,
        AttackMethod::ExplicitBoost,
        AttackMethod::PipAttack,
        AttackMethod::FedRecAttack,
    ];
    let rho = 0.05;
    let num_malicious = ((train.num_users() as f64) * rho).round() as usize;
    let fed = FedConfig {
        epochs: 60,
        ..FedConfig::smoke()
    };
    let evaluator = Evaluator::new(&train, &test, &targets, 23);

    let mut results: Vec<(&str, f64, f64)> = Vec::new();
    for method in methods {
        let env = AttackEnv::over_dataset(&train, &targets)
            .malicious(num_malicious)
            .kappa(60)
            .k(fed.k)
            .seed(29)
            .public(0.05, 19);
        let adversary = build_adversary(method, &env);
        let mut sim = Simulation::new(&train, fed, adversary, num_malicious);
        sim.run(None);
        let model = MfModel::from_factors(sim.user_factors(), sim.items().clone());
        let rep = evaluator.evaluate(&model, &train, &test);
        results.push((method.label(), rep.attack.er_at_10, rep.hr_at_10));
    }

    results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("attack          ER@10     HR@10   (rho = 5%)");
    println!("---------------------------------------------");
    for (name, er, hr) in &results {
        println!("{name:<14} {er:>7.4}   {hr:>7.4}");
    }
    println!(
        "\nExpected ordering (paper Table VII, Steam block): FedRecAttack \
         far ahead; Popular/Bandwagon get real traction on sparse data; \
         Random stays near zero."
    );
}

//! Deep-learning recommender scenario: attacking a federated NCF.
//!
//! §III-B of the paper covers the case where the interaction function Υ
//! is a neural network whose parameters Θ are shared alongside V; §IV
//! notes that poisoning Θ directly is "possibly a simpler and more
//! effective attack method" but not generic. This example runs both
//! options against the federated NCF and prints what each achieves:
//!
//! * FedRecAttack-on-NCF (poison V only, through the MLP jacobians);
//! * the Θ-boost shortcut (poison the shared MLP).
//!
//! Run with: `cargo run --release --example ncf_attack`

use fedrecattack::data::split::leave_one_out;
use fedrecattack::data::synthetic::SyntheticConfig;
use fedrecattack::data::PublicView;
use fedrecattack::ncf::attack::{NcfFedRecAttack, NcfNoAttack, ThetaBoostAttack};
use fedrecattack::ncf::sim::{NcfConfig, NcfSimulation};

fn main() {
    let data = SyntheticConfig::smoke().generate(51);
    let (train, test) = leave_one_out(&data, 5);
    let targets = train.coldest_items(1);
    let malicious = train.num_users() / 10; // rho = 10%
    let cfg = NcfConfig {
        epochs: 100,
        ..NcfConfig::smoke()
    };
    println!(
        "federated NCF: k={}, hidden={}, {} users, target item {:?}, rho=10%\n",
        cfg.k,
        cfg.hidden,
        train.num_users(),
        targets
    );

    let mut clean = NcfSimulation::new(&train, cfg, Box::new(NcfNoAttack), 0);
    clean.run();
    let clean_rep = clean.evaluate(&train, &test, &targets, 3);

    let public = PublicView::sample(&train, 0.05, 2);
    let v_attack = NcfFedRecAttack::new(targets.clone(), public, malicious, 7);
    let mut sim_v = NcfSimulation::new(&train, cfg, Box::new(v_attack), malicious);
    sim_v.run();
    let v_rep = sim_v.evaluate(&train, &test, &targets, 3);

    let t_attack = ThetaBoostAttack::new(targets.clone(), malicious, 20.0, 9);
    let mut sim_t = NcfSimulation::new(&train, cfg, Box::new(t_attack), malicious);
    sim_t.run();
    let t_rep = sim_t.evaluate(&train, &test, &targets, 3);

    println!("attack                     ER@10    NDCG@10   HR@10");
    println!("----------------------------------------------------");
    println!(
        "none                      {:>6.4}   {:>6.4}   {:>6.4}",
        clean_rep.er_at_10, clean_rep.ndcg_at_10, clean_rep.hr_at_10
    );
    println!(
        "FedRecAttack (poison V)   {:>6.4}   {:>6.4}   {:>6.4}",
        v_rep.er_at_10, v_rep.ndcg_at_10, v_rep.hr_at_10
    );
    println!(
        "Theta boost (poison MLP)  {:>6.4}   {:>6.4}   {:>6.4}",
        t_rep.er_at_10, t_rep.ndcg_at_10, t_rep.hr_at_10
    );
    println!(
        "\nReading: poisoning V transfers FedRecAttack to the deep model \
         (the paper's generality claim); poisoning the shared MLP shifts \
         scores but struggles to retarget *rankings* — one measured reason \
         the paper calls that route non-generic."
    );
}
